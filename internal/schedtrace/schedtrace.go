// Package schedtrace records what the simulated CPU executed when — the
// execution-span trace of a hypervisor run — and renders it as an ASCII
// Gantt chart or CSV. It is the observability layer for debugging
// schedules and for documenting interposed-IRQ behaviour: one glance
// shows a bottom handler executing inside a foreign slot between two
// context switches.
package schedtrace

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/simtime"
)

// Kind classifies an execution span.
type Kind int

const (
	// Guest: partition application/guest-OS execution.
	Guest Kind = iota
	// BottomHandler: a bottom handler in its own partition's slot.
	BottomHandler
	// InterposedBH: a bottom handler interposed into a foreign slot.
	InterposedBH
	// TopHandler: hypervisor IRQ context (top handler incl. C_Mon).
	TopHandler
	// CtxSwitch: a partition context switch (TDMA or grant).
	CtxSwitch
	// SchedOverhead: scheduler manipulation for a grant (C_sched).
	SchedOverhead
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Guest:
		return "guest"
	case BottomHandler:
		return "bottom-handler"
	case InterposedBH:
		return "interposed-bh"
	case TopHandler:
		return "top-handler"
	case CtxSwitch:
		return "ctx-switch"
	case SchedOverhead:
		return "sched"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// glyph is the Gantt symbol of each kind.
func (k Kind) glyph() byte {
	switch k {
	case Guest:
		return '='
	case BottomHandler:
		return 'B'
	case InterposedBH:
		return 'I'
	case TopHandler:
		return 'T'
	case CtxSwitch:
		return 'C'
	case SchedOverhead:
		return 'S'
	default:
		return '?'
	}
}

// Span is one contiguous CPU execution interval [Start, End).
type Span struct {
	Kind      Kind
	Partition int // executing/target partition; -1 for global hypervisor work
	Source    int // IRQ source; -1 when not IRQ-related
	Start     simtime.Time
	End       simtime.Time
	Label     string
}

// Len returns the span length.
func (s Span) Len() simtime.Duration { return s.End.Sub(s.Start) }

// Recorder accumulates spans. The zero value is ready to use. Limit, if
// positive, caps memory by dropping further spans once reached (Dropped
// counts them).
type Recorder struct {
	Spans   []Span
	Limit   int
	Dropped int
}

// Record appends a span; zero-length spans are ignored.
func (r *Recorder) Record(s Span) {
	if s.End <= s.Start {
		return
	}
	if r.Limit > 0 && len(r.Spans) >= r.Limit {
		r.Dropped++
		return
	}
	r.Spans = append(r.Spans, s)
}

// Busy returns the total recorded execution time.
func (r *Recorder) Busy() simtime.Duration {
	var sum simtime.Duration
	for _, s := range r.Spans {
		sum += s.Len()
	}
	return sum
}

// ByKind returns total time per kind.
func (r *Recorder) ByKind() map[Kind]simtime.Duration {
	out := make(map[Kind]simtime.Duration, numKinds)
	for _, s := range r.Spans {
		out[s.Kind] += s.Len()
	}
	return out
}

// Validate checks that spans are non-overlapping and ordered — the CPU
// executes one thing at a time. Spans must be recorded in completion
// order (the hypervisor does so naturally).
func (r *Recorder) Validate() error {
	for i := 1; i < len(r.Spans); i++ {
		if r.Spans[i].Start < r.Spans[i-1].End {
			return fmt.Errorf("schedtrace: span %d (%s @%v) overlaps predecessor (%s ending %v)",
				i, r.Spans[i].Kind, r.Spans[i].Start, r.Spans[i-1].Kind, r.Spans[i-1].End)
		}
	}
	return nil
}

// WriteCSV emits "start_us,end_us,kind,partition,source,label" rows.
func (r *Recorder) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "start_us,end_us,kind,partition,source,label")
	for _, s := range r.Spans {
		fmt.Fprintf(w, "%.3f,%.3f,%s,%d,%d,%s\n",
			s.Start.MicrosF(), s.End.MicrosF(), s.Kind, s.Partition, s.Source, s.Label)
	}
}

// Gantt renders the window [from, to) as one text row per partition plus
// a hypervisor row, one character per bucket of width step. The glyph of
// a bucket is the kind occupying most of it on that row; '.' is idle.
//
//	p0 |====T===BB====......|
//	p1 |....TI==============|
//	hv |....C....C..........|
func (r *Recorder) Gantt(w io.Writer, from, to simtime.Time, step simtime.Duration, partitions []string) {
	if step <= 0 || to <= from {
		fmt.Fprintln(w, "(empty gantt window)")
		return
	}
	nCols := int(simtime.CeilDiv(to.Sub(from), step))
	nRows := len(partitions) + 1 // + hypervisor row
	occupancy := make([][]map[Kind]simtime.Duration, nRows)
	for i := range occupancy {
		occupancy[i] = make([]map[Kind]simtime.Duration, nCols)
	}
	rowOf := func(s Span) int {
		switch s.Kind {
		case Guest, BottomHandler, InterposedBH:
			if s.Partition >= 0 && s.Partition < len(partitions) {
				return s.Partition
			}
		}
		return len(partitions) // hypervisor row
	}
	for _, s := range r.Spans {
		if s.End <= from || s.Start >= to {
			continue
		}
		row := rowOf(s)
		start := simtime.MaxT(s.Start, from)
		end := simtime.MinT(s.End, to)
		for t := start; t < end; {
			col := int(t.Sub(from) / step)
			bucketEnd := from.Add(simtime.Duration(col+1) * step)
			segEnd := simtime.MinT(end, bucketEnd)
			if occupancy[row][col] == nil {
				occupancy[row][col] = make(map[Kind]simtime.Duration)
			}
			occupancy[row][col][s.Kind] += segEnd.Sub(t)
			t = segEnd
		}
	}
	names := append([]string(nil), partitions...)
	names = append(names, "hv")
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	fmt.Fprintf(w, "%*s  window [%v, %v), %v per column\n", width, "", from, to, step)
	for row, name := range names {
		var sb strings.Builder
		for col := 0; col < nCols; col++ {
			m := occupancy[row][col]
			if len(m) == 0 {
				sb.WriteByte('.')
				continue
			}
			var best Kind
			var bestDur simtime.Duration
			for k := Kind(0); k < numKinds; k++ {
				if d := m[k]; d > bestDur {
					best, bestDur = k, d
				}
			}
			sb.WriteByte(best.glyph())
		}
		fmt.Fprintf(w, "%*s |%s|\n", width, name, sb.String())
	}
	fmt.Fprintf(w, "%*s  = guest  B bottom  I interposed  T top  C ctx  S sched  . idle\n", width, "")
}
