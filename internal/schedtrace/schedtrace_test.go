package schedtrace

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }
func tt(v int64) simtime.Time     { return simtime.Time(simtime.Micros(v)) }

func TestRecordAndBusy(t *testing.T) {
	var r Recorder
	r.Record(Span{Kind: Guest, Partition: 0, Start: 0, End: tt(100)})
	r.Record(Span{Kind: TopHandler, Partition: -1, Start: tt(100), End: tt(106)})
	r.Record(Span{Kind: Guest, Partition: 0, Start: tt(106), End: tt(106)}) // zero-length: ignored
	if len(r.Spans) != 2 {
		t.Fatalf("spans = %d", len(r.Spans))
	}
	if r.Busy() != us(106) {
		t.Fatalf("busy = %v", r.Busy())
	}
	by := r.ByKind()
	if by[Guest] != us(100) || by[TopHandler] != us(6) {
		t.Fatalf("by kind = %v", by)
	}
}

func TestLimit(t *testing.T) {
	r := Recorder{Limit: 2}
	for i := int64(0); i < 5; i++ {
		r.Record(Span{Kind: Guest, Start: tt(i * 10), End: tt(i*10 + 5)})
	}
	if len(r.Spans) != 2 || r.Dropped != 3 {
		t.Fatalf("spans = %d, dropped = %d", len(r.Spans), r.Dropped)
	}
}

func TestValidate(t *testing.T) {
	var r Recorder
	r.Record(Span{Kind: Guest, Start: 0, End: tt(10)})
	r.Record(Span{Kind: TopHandler, Start: tt(10), End: tt(12)})
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.Record(Span{Kind: Guest, Start: tt(11), End: tt(20)}) // overlaps
	if err := r.Validate(); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestGantt(t *testing.T) {
	var r Recorder
	r.Record(Span{Kind: Guest, Partition: 0, Start: 0, End: tt(40)})
	r.Record(Span{Kind: TopHandler, Partition: -1, Start: tt(40), End: tt(50)})
	r.Record(Span{Kind: InterposedBH, Partition: 1, Start: tt(50), End: tt(80)})
	r.Record(Span{Kind: CtxSwitch, Partition: -1, Start: tt(80), End: tt(90)})
	r.Record(Span{Kind: Guest, Partition: 0, Start: tt(90), End: tt(100)})

	var sb strings.Builder
	r.Gantt(&sb, 0, tt(100), us(10), []string{"p0", "p1"})
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + p0 + p1 + hv + legend
		t.Fatalf("gantt lines = %d:\n%s", len(lines), out)
	}
	p0 := lines[1]
	p1 := lines[2]
	hv := lines[3]
	if !strings.Contains(p0, "====") {
		t.Errorf("p0 row missing guest glyphs: %q", p0)
	}
	if !strings.Contains(p1, "III") {
		t.Errorf("p1 row missing interposed glyphs: %q", p1)
	}
	if !strings.Contains(hv, "T") || !strings.Contains(hv, "C") {
		t.Errorf("hv row missing handler/ctx glyphs: %q", hv)
	}
	// Idle buckets render as dots.
	if !strings.Contains(p1, ".") {
		t.Errorf("p1 row missing idle dots: %q", p1)
	}
}

func TestGanttEmptyWindow(t *testing.T) {
	var r Recorder
	var sb strings.Builder
	r.Gantt(&sb, tt(10), tt(10), us(1), []string{"p0"})
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty window not flagged")
	}
}

func TestGanttMajorityGlyph(t *testing.T) {
	// A bucket mostly guest with a sliver of top handler renders '='.
	var r Recorder
	r.Record(Span{Kind: Guest, Partition: 0, Start: 0, End: tt(9)})
	r.Record(Span{Kind: TopHandler, Partition: -1, Start: tt(9), End: tt(10)})
	var sb strings.Builder
	r.Gantt(&sb, 0, tt(10), us(10), []string{"p0"})
	lines := strings.Split(sb.String(), "\n")
	if !strings.Contains(lines[1], "=") {
		t.Fatalf("majority glyph wrong: %q", lines[1])
	}
}

func TestWriteCSV(t *testing.T) {
	var r Recorder
	r.Record(Span{Kind: BottomHandler, Partition: 2, Source: 1, Start: tt(5), End: tt(35), Label: "bh:x"})
	var sb strings.Builder
	r.WriteCSV(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "start_us,end_us,kind,partition,source,label\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "5.000,35.000,bottom-handler,2,1,bh:x") {
		t.Fatalf("row: %q", out)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind string")
	}
}
