package serve

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Cache sources, as reported by Get and surfaced in the X-Cache
// response header: a memory hit, a durable-store hit (promoted into
// memory on the way out), or a miss.
const (
	cacheMem   = "hit"
	cacheStore = "store"
	cachePeer  = "peer" // fetched from a ring replica, checksum-verified
	cacheMiss  = ""
)

// cache is a content-addressed LRU over encoded result bodies,
// optionally layered on the disk-backed store.Store. Keys are spec
// content addresses (see Spec.key), so an entry can never be stale —
// only evicted. The memory tier bounds entry count (result bodies are
// figure-sized by construction of the report encoders); the store tier
// bounds bytes and survives the process, so a restarted daemon serves
// warm results without recomputation.
type cache struct {
	mu        sync.Mutex
	max       int
	ll        *list.List               // front = most recently used
	items     map[string]*list.Element // key → element holding *cacheEntry
	store     *store.Store             // nil = memory only
	hits      *metrics.Counter
	storeHits *metrics.Counter
	misses    *metrics.Counter
	storeErrs *metrics.Counter
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCache(max int, st *store.Store, reg *metrics.Registry) *cache {
	return &cache{
		max:       max,
		ll:        list.New(),
		items:     make(map[string]*list.Element),
		store:     st,
		hits:      reg.Counter("repro_server_cache_hits_total"),
		storeHits: reg.Counter("repro_server_cache_store_hits_total"),
		misses:    reg.Counter("repro_server_cache_misses_total"),
		storeErrs: reg.Counter("repro_server_cache_store_errors_total"),
	}
}

// Get returns the cached body for key and its source: cacheMem for a
// memory hit, cacheStore for a durable-store hit (the entry is
// promoted into the memory tier), cacheMiss for neither. Callers must
// not mutate the returned slice. A corrupt store entry is quarantined
// by the store and surfaces here as a miss — bad bytes are recomputed,
// never served.
func (c *cache) Get(key string) ([]byte, string) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.hits.Inc()
		c.ll.MoveToFront(el)
		body := el.Value.(*cacheEntry).body
		c.mu.Unlock()
		return body, cacheMem
	}
	c.mu.Unlock()
	if c.store != nil {
		if body, ok := c.store.Get(key); ok {
			c.storeHits.Inc()
			c.promote(key, body)
			return body, cacheStore
		}
	}
	c.misses.Inc()
	return nil, cacheMiss
}

// Put stores body under key in both tiers, evicting from the memory
// tier's cold end when full. The store write is atomic and checksummed
// (see internal/store); a store error degrades durability, not
// availability — the in-memory entry still serves.
func (c *cache) Put(key string, body []byte) {
	c.promote(key, body)
	if c.store != nil {
		if err := c.store.Put(key, body); err != nil {
			// Degraded durability must at least be visible: the entry
			// serves from memory, but a restart will recompute it.
			c.storeErrs.Inc()
		}
	}
}

// promote inserts body into the memory tier (refreshing recency if the
// key is already present — determinism makes re-computed bodies
// identical).
func (c *cache) promote(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*cacheEntry).key)
	}
}

// Len reports the number of entries in the memory tier.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
