package serve

import (
	"container/list"
	"sync"

	"repro/internal/metrics"
)

// cache is a content-addressed LRU over encoded result bodies. Keys
// are spec content addresses (see Spec.key), so an entry can never be
// stale — only evicted. Bounded by entry count; result bodies are
// figure-sized (a few KiB), not trace-sized, by construction of the
// report encoders.
type cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List               // front = most recently used
	items  map[string]*list.Element // key → element holding *cacheEntry
	hits   *metrics.Counter
	misses *metrics.Counter
}

type cacheEntry struct {
	key  string
	body []byte
}

func newCache(max int, reg *metrics.Registry) *cache {
	return &cache{
		max:    max,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
		hits:   reg.Counter("repro_server_cache_hits_total"),
		misses: reg.Counter("repro_server_cache_misses_total"),
	}
}

// Get returns the cached body for key, bumping its recency and the
// hit/miss counters. Callers must not mutate the returned slice.
func (c *cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting from the cold end when full.
func (c *cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Determinism makes re-computed bodies identical, so this
		// only refreshes recency.
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	for c.ll.Len() > c.max {
		cold := c.ll.Back()
		c.ll.Remove(cold)
		delete(c.items, cold.Value.(*cacheEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
