package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/store"
)

func memCache(t *testing.T, max int) (*cache, *metrics.Registry) {
	t.Helper()
	reg := metrics.NewRegistry()
	return newCache(max, nil, reg), reg
}

// TestCacheEvictionOrder: under interleaved Get/Put traffic, eviction
// tracks recency, not insertion — a Get rescues an entry from the cold
// end.
func TestCacheEvictionOrder(t *testing.T) {
	c, _ := memCache(t, 3)
	for i := 1; i <= 3; i++ {
		c.Put(k(i), []byte(k(i)))
	}
	// Recency now 3 > 2 > 1. Touch 1, demoting 2 to coldest.
	if _, src := c.Get(k(1)); src != cacheMem {
		t.Fatalf("Get(k1) = %q, want memory hit", src)
	}
	c.Put(k(4), []byte(k(4))) // evicts 2
	if _, src := c.Get(k(2)); src != cacheMiss {
		t.Fatal("k2 survived eviction despite being coldest")
	}
	for _, i := range []int{1, 3, 4} {
		if body, src := c.Get(k(i)); src != cacheMem || !bytes.Equal(body, []byte(k(i))) {
			t.Fatalf("k%d: src %q body %q", i, src, body)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Re-putting an existing key refreshes recency without growing.
	c.Put(k(3), []byte(k(3)))
	c.Put(k(5), []byte(k(5))) // evicts 1 (oldest after the refresh)
	if _, src := c.Get(k(1)); src != cacheMiss {
		t.Fatal("k1 survived; re-Put did not refresh recency of k3")
	}
}

// TestCacheLenConsistentUnderConcurrency hammers Get/Put/Len from many
// goroutines; under -race this is the data-race proof, and the bound
// must hold at every observation.
func TestCacheLenConsistentUnderConcurrency(t *testing.T) {
	const max = 8
	c, _ := memCache(t, max)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := k((w*7 + i) % 32)
				c.Put(key, []byte(key))
				if body, src := c.Get(key); src != cacheMiss && !bytes.Equal(body, []byte(key)) {
					t.Errorf("Get(%s) returned foreign bytes %q", key, body)
				}
				if n := c.Len(); n < 0 || n > max {
					t.Errorf("Len = %d outside [0, %d]", n, max)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := c.Len(); n != max {
		t.Fatalf("final Len = %d, want %d", n, max)
	}
}

// TestCacheStoreBackedMissPath: with the durable tier layered under
// the LRU, a memory miss falls through to the store (X-Cache "store",
// promoted into memory), and only a miss in both tiers is a miss.
func TestCacheStoreBackedMissPath(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	c := newCache(2, st, reg)

	body := []byte("durable bytes")
	c.Put(k(1), body)
	// Evict k1 from the memory tier; the store still holds it.
	c.Put(k(2), []byte("b2"))
	c.Put(k(3), []byte("b3"))
	if got, src := c.Get(k(1)); src != cacheStore || !bytes.Equal(got, body) {
		t.Fatalf("Get(k1) = %q, %q; want store hit with original bytes", got, src)
	}
	if got := reg.Counter("repro_server_cache_store_hits_total").Value(); got != 1 {
		t.Fatalf("store_hits_total = %d, want 1", got)
	}
	// Promoted: the next Get is a memory hit.
	if _, src := c.Get(k(1)); src != cacheMem {
		t.Fatalf("Get(k1) after promotion = %q, want memory hit", src)
	}
	// Absent in both tiers: a genuine miss.
	if _, src := c.Get(k(9)); src != cacheMiss {
		t.Fatalf("Get(k9) = %q, want miss", src)
	}
	if got := reg.Counter("repro_server_cache_misses_total").Value(); got != 1 {
		t.Fatalf("misses_total = %d, want 1", got)
	}
}

// k builds a 64-hex-char key like a real content address.
func k(i int) string {
	return fmt.Sprintf("%064x", i)
}
