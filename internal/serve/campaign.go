package serve

// The campaign orchestrator: million-cell generator expansion with
// streaming aggregation, layered on the primitives the daemon already
// has. A client POSTs a generator spec (internal/campaign.Spec); the
// daemon expands it into cells in the spec's deterministic order and
// feeds each cell through the *same* admission path as any job —
// content address, cache short-circuit, singleflight, write-ahead
// journal, bounded queue — so identical cells are computed once even
// across overlapping campaigns, and every cell result is durable the
// instant it exists.
//
// Aggregation is a commutative-monoid fold (internal/campaign): cells
// merge in completion order, yet the encoded aggregate is byte-for-byte
// the bytes a sequential in-process fold produces. That is the whole
// crash-safety story: a campaign is journaled as its generator spec
// (one record, however many cells), and resuming after a SIGKILL just
// refolds — stored cells are cache hits, missing cells recompute to
// identical bytes, and the final aggregate cannot diverge.
//
// Lock order: jmu → cmu → (job.mu | journal.mu). cmu serialises every
// aggregate mutation, so the fold itself is single-writer.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
)

// campaignState tracks one accepted campaign through its lifecycle:
// running → done/failed. A campaign interrupted by drain or crash
// stays "running" with its journal record live, and the next start
// resumes it.
type campaignState struct {
	id  string
	key string

	// Everything below is guarded by Server.cmu.
	agg       *campaign.Aggregate
	status    string // StatusRunning / StatusDone / StatusFailed
	err       string
	body      []byte        // final encoded aggregate (done only; nil after replay)
	watch     chan struct{} // closed + replaced on every aggregate change
	recovered bool          // rebuilt by journal replay
}

// bumpLocked wakes every stream watcher. Callers hold cmu.
func (cs *campaignState) bumpLocked() {
	close(cs.watch)
	cs.watch = make(chan struct{})
}

// campaignView is the body of POST /v1/campaigns (202), GET
// /v1/campaigns/{id}, and each chunk of the stream endpoint.
type campaignView struct {
	ID         string          `json:"id"`
	Status     string          `json:"status"`
	Key        string          `json:"key"`
	TotalCells int             `json:"total_cells"`
	Done       int             `json:"done"`
	Errors     int             `json:"errors"`
	Violations int             `json:"violations"`
	Error      string          `json:"error,omitempty"`
	Aggregate  json.RawMessage `json:"aggregate,omitempty"`
}

// campaignViewLocked snapshots cs. Callers hold cmu. For a campaign
// replayed as done the body lives in the store, not here — the caller
// fills Aggregate from the cache by key, outside the lock.
func (s *Server) campaignViewLocked(cs *campaignState, includeAgg bool) campaignView {
	v := campaignView{
		ID:         cs.id,
		Status:     cs.status,
		Key:        cs.key,
		TotalCells: cs.agg.TotalCells,
		Done:       cs.agg.Done,
		Errors:     cs.agg.Errors,
		Violations: cs.agg.Violations,
		Error:      cs.err,
	}
	if includeAgg {
		switch cs.status {
		case StatusDone:
			v.Aggregate = json.RawMessage(cs.body)
		case StatusRunning:
			if buf, err := report.EncodeCampaign(cs.agg); err == nil {
				v.Aggregate = json.RawMessage(buf)
			}
		}
	}
	return v
}

// handleCampaignSubmit admits a campaign: normalize the generator spec,
// content-address it, short-circuit on a stored final aggregate,
// singleflight against a running campaign with the same key, and
// otherwise journal the spec (write-ahead, under the admission lock)
// before acking 202 and starting the feeder.
func (s *Server) handleCampaignSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "invalid campaign spec: %v", err)
		return
	}
	agg, err := campaign.NewAggregate(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := campaignKey(&agg.Spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// A finished campaign is content-addressed like any job: the same
	// spec resubmitted serves the stored aggregate without re-expanding
	// a single cell.
	if body, src := s.cache.Get(key); src != cacheMiss {
		writeResult(w, key, src, body)
		return
	}
	// A peer may have finished this exact campaign already (content
	// addressing covers aggregates too): one fetch beats re-expanding
	// every cell.
	if body, src, ok := s.peerFetch(r.Context(), key); ok {
		writeResult(w, key, src, body)
		return
	}

	s.jmu.Lock()
	s.cmu.Lock()
	if cs := s.campInflight[key]; cs != nil {
		v := s.campaignViewLocked(cs, false)
		s.cmu.Unlock()
		s.jmu.Unlock()
		w.Header().Set("Location", "/v1/campaigns/"+v.ID)
		writeJSON(w, http.StatusAccepted, v)
		return
	}
	cs := &campaignState{
		id:     fmt.Sprintf("c%06d", s.nextCampID.Add(1)),
		key:    key,
		agg:    agg,
		status: StatusRunning,
		watch:  make(chan struct{}),
	}
	// Write-ahead, exactly like a job accept: one record carries the
	// whole generator spec, so replay re-creates the campaign from
	// nothing. No ack without the record.
	if s.jl != nil {
		spec := agg.Spec
		//reprolint:allow lockheld write-ahead ordering: the campaign record must be durable before the ack, the fsync is the admission cost
		if err := s.jl.append(journalRecord{Op: opCampaign, ID: cs.id, Key: cs.key, Camp: &spec}); err != nil {
			s.cmu.Unlock()
			s.jmu.Unlock()
			s.journalErrs.Inc()
			s.unavailable(w)
			return
		}
	}
	s.campaigns[cs.id] = cs
	s.campInflight[key] = cs
	v := s.campaignViewLocked(cs, false)
	s.cmu.Unlock()
	s.jmu.Unlock()

	s.campAccepted.Inc()
	s.campActive.Add(1)
	s.campWG.Add(1)
	go s.feedCampaign(cs)
	w.Header().Set("Location", "/v1/campaigns/"+cs.id)
	writeJSON(w, http.StatusAccepted, v)
}

// feedCampaign expands the generator spec in its deterministic order
// and drives every cell to a merged terminal state: stored cells merge
// immediately (cache hit), fresh cells are admitted through the job
// queue — riding its backpressure, attaching to in-flight identical
// cells — and merged by per-cell waiters as they finish. Completion
// order does not matter: the aggregate is a commutative fold.
func (s *Server) feedCampaign(cs *campaignState) {
	defer s.campWG.Done()
	var wg sync.WaitGroup
	var slots chan struct{} // bounds concurrent remote cell dispatches
	if s.cluster != nil {
		slots = make(chan struct{}, s.cluster.ScatterWidth())
	}
	for _, c := range cs.agg.Spec.Expand() {
		if s.draining.Load() {
			// Stop expanding; the campaign's journal record is live, so
			// the next start resumes exactly here (stored cells refold).
			break
		}
		cell := cs.agg.Spec.CellSpec(c)
		sp := &Spec{Kind: "cell", Cell: &cell}
		key, err := sp.key()
		if err != nil {
			s.mergeCellFailure(cs, c.Index, err.Error())
			continue
		}
		if body, src := s.cache.Get(key); src != cacheMiss {
			s.campCellHits.Inc()
			s.mergeCellBody(cs, c.Index, body)
			continue
		}
		// Ring scatter: a cell owned by a usable peer computes there
		// (its result lands in both stores); a dead owner's cells are
		// re-owned here. Local cells fall through to the normal path.
		if s.scatterCell(cs, c.Index, sp, key, &wg, slots) {
			continue
		}
		jb, ok := s.submitCell(sp, key)
		if !ok {
			continue // shutting down or journal dead; resumes on restart
		}
		wg.Add(1)
		go func(idx int, jb *job) {
			defer wg.Done()
			s.mergeCellJob(cs, idx, jb)
		}(c.Index, jb)
	}
	wg.Wait()
	s.finishCampaign(cs)
}

// submitCell admits one cell through the same path as an HTTP
// submission: singleflight on the content address, write-ahead accept
// record under jmu, bounded queue. Backpressure is ridden, not
// surfaced — the feeder waits for queue space instead of failing the
// cell. Returns ok=false when the daemon is shutting down (or the
// journal died): the cell stays unmerged and resumes on restart.
func (s *Server) submitCell(sp *Spec, key string) (*job, bool) {
	for {
		s.jmu.Lock()
		if existing := s.inflight[key]; existing != nil {
			s.jmu.Unlock()
			s.coalesced.Inc()
			return existing, true
		}
		// Don't write-ahead an accept that is visibly about to be
		// refused: probe for queue space first. The probe is racy, but a
		// lost race costs one cancelled record — the same as an HTTP
		// submission racing a full queue — never a lost cell.
		if len(s.queue) == cap(s.queue) {
			s.jmu.Unlock()
			if s.draining.Load() {
				return nil, false
			}
			time.Sleep(time.Millisecond)
			continue
		}
		jb := &job{
			id:     fmt.Sprintf("j%08d", s.nextID.Add(1)),
			key:    key,
			spec:   sp,
			done:   make(chan struct{}),
			status: StatusQueued,
		}
		//reprolint:allow lockheld write-ahead ordering: the cell accept must be durable before the job exists, the fsync is the admission cost
		if err := s.journalAccept(jb); err != nil {
			s.jmu.Unlock()
			return nil, false
		}
		adm := s.enqueue(jb)
		if adm == admitted {
			s.jobs[jb.id] = jb
			s.inflight[key] = jb
		}
		s.jmu.Unlock()
		switch adm {
		case admitted:
			s.accepted.Inc()
			return jb, true
		case shuttingDown:
			s.journalTerminal(jb, opCancelled, "refused: shutting down")
			return nil, false
		case queueFull:
			s.journalTerminal(jb, opCancelled, "refused: queue full")
			time.Sleep(time.Millisecond)
		}
	}
}

// mergeCellJob waits one cell job out and merges its terminal state.
func (s *Server) mergeCellJob(cs *campaignState, idx int, jb *job) {
	<-jb.done
	jb.mu.Lock()
	status, body, errMsg := jb.status, jb.body, jb.err
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		if len(body) == 0 {
			// A replayed job finished from the store without loading the
			// body into memory; fetch it by content address.
			if b, src := s.cache.Get(jb.key); src != cacheMiss {
				body = b
			}
		}
		if len(body) == 0 {
			s.mergeCellFailure(cs, idx, "cell result evicted before merge")
			return
		}
		s.mergeCellBody(cs, idx, body)
	case StatusFailed:
		s.mergeCellFailure(cs, idx, errMsg)
	case StatusCancelled:
		if s.draining.Load() {
			return // unmerged: the restart recomputes and resumes this cell
		}
		s.mergeCellFailure(cs, idx, errMsg)
	}
}

// mergeCellBody folds one stored cell document into the aggregate.
func (s *Server) mergeCellBody(cs *campaignState, idx int, body []byte) {
	cr, err := report.DecodeCell(body)
	if err != nil {
		s.mergeCellFailure(cs, idx, err.Error())
		return
	}
	s.cmu.Lock()
	err = cs.agg.MergeCell(idx, cr)
	cs.bumpLocked()
	s.cmu.Unlock()
	if err == nil {
		s.campMerged.Inc()
		if cr.Spec.Kind == campaign.KindDiffuzz {
			s.diffuzzMerged.Inc()
			if !cr.Pass {
				s.diffuzzViolations.Inc()
			}
		}
	}
}

// mergeCellFailure folds one failed cell; the campaign completes with
// the failure counted per bucket instead of stalling.
func (s *Server) mergeCellFailure(cs *campaignState, idx int, msg string) {
	s.cmu.Lock()
	err := cs.agg.MergeFailure(idx, msg)
	cs.bumpLocked()
	s.cmu.Unlock()
	if err == nil {
		s.campMerged.Inc()
	}
}

// finishCampaign settles a campaign once its feeder is done. Complete
// aggregates are encoded, stored under the campaign's content address
// (store before terminal record — the crash between the two replays
// into a refold that lands on identical bytes), and journaled
// terminal. An incomplete aggregate means drain interrupted expansion:
// the campaign stays running and its journal record live.
func (s *Server) finishCampaign(cs *campaignState) {
	s.cmu.Lock()
	if cs.status != StatusRunning || !cs.agg.Complete() {
		s.cmu.Unlock()
		return
	}
	body, err := report.EncodeCampaign(cs.agg)
	if err != nil {
		cs.status = StatusFailed
		cs.err = err.Error()
	} else {
		cs.status = StatusDone
		cs.body = body
	}
	delete(s.campInflight, cs.key)
	cs.bumpLocked()
	status, errMsg := cs.status, cs.err
	s.cmu.Unlock()

	if status == StatusDone {
		s.cache.Put(cs.key, body)
		s.campaignTerminal(cs, opDone, "")
		s.campDone.Inc()
	} else {
		s.campaignTerminal(cs, opFailed, errMsg)
		s.campFailed.Inc()
	}
	s.campActive.Add(-1)
	s.retireCampaign(cs)
	s.maybeCompactJournal()
}

// campaignTerminal best-effort-logs a campaign's terminal transition,
// with the same safety argument as journalTerminal: a lost record
// resumes the campaign, and the refold short-circuits per cell.
func (s *Server) campaignTerminal(cs *campaignState, op, errMsg string) {
	if s.jl == nil {
		return
	}
	if err := s.jl.append(journalRecord{Op: op, ID: cs.id, Err: errMsg}); err != nil {
		s.journalErrs.Inc()
	}
}

// retireCampaign enforces the finished-campaign retention bound
// (shared with jobs: Options.JobRetention). An aged-out id is a 404;
// the final aggregate remains resolvable via GET /v1/results/{key}.
func (s *Server) retireCampaign(cs *campaignState) {
	s.cmu.Lock()
	s.campFinished = append(s.campFinished, cs.id)
	for len(s.campFinished) > s.opts.JobRetention {
		delete(s.campaigns, s.campFinished[0])
		copy(s.campFinished, s.campFinished[1:])
		s.campFinished = s.campFinished[:len(s.campFinished)-1]
	}
	s.cmu.Unlock()
}

// handleCampaign serves one campaign's state, including the current
// (running) or final (done) aggregate document.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.cmu.Lock()
	cs := s.campaigns[id]
	var v campaignView
	if cs != nil {
		v = s.campaignViewLocked(cs, true)
	}
	s.cmu.Unlock()
	if cs == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	if v.Status == StatusDone && len(v.Aggregate) == 0 {
		if body, src := s.cache.Get(cs.key); src != cacheMiss {
			v.Aggregate = json.RawMessage(body)
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleCampaignStream streams incremental aggregates as NDJSON: one
// campaignView per line, a new line whenever cells merged since the
// last, the final line terminal. The stream is chunked (flushed per
// line) so a client watches a million-cell campaign converge without
// polling; every line's aggregate is a valid deterministic fold of the
// cells merged so far.
func (s *Server) handleCampaignStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.cmu.Lock()
	cs := s.campaigns[id]
	s.cmu.Unlock()
	if cs == nil {
		httpError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	fl, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Campaign-Key", cs.key)
	w.WriteHeader(http.StatusOK)
	for {
		s.cmu.Lock()
		v := s.campaignViewLocked(cs, true)
		watch := cs.watch
		s.cmu.Unlock()
		if v.Status == StatusDone && len(v.Aggregate) == 0 {
			if body, src := s.cache.Get(cs.key); src != cacheMiss {
				v.Aggregate = json.RawMessage(body)
			}
		}
		buf, err := json.Marshal(v)
		if err != nil {
			return
		}
		if _, err := w.Write(append(buf, '\n')); err != nil {
			return
		}
		if fl != nil {
			fl.Flush()
		}
		if v.Status != StatusRunning {
			return
		}
		select {
		case <-watch:
			// Merges coalesce naturally: however many cells landed while
			// this line was being written, the next snapshot holds them all.
		case <-r.Context().Done():
			return
		case <-time.After(time.Second):
			// Heartbeat: a stalled campaign still streams its state.
		}
	}
}

// liveRecords snapshots the journal's live set: generator specs of
// non-terminal campaigns, then accept records of non-terminal jobs.
// Callers hold jmu — accepts are appended under jmu, so the snapshot
// can never miss one; terminal records racing the snapshot are merely
// re-derived on the next replay (the store short-circuits them).
func (s *Server) liveRecords() []journalRecord {
	var live []journalRecord
	s.cmu.Lock()
	cids := make([]string, 0, len(s.campaigns))
	for id := range s.campaigns {
		cids = append(cids, id)
	}
	sort.Strings(cids)
	for _, id := range cids {
		cs := s.campaigns[id]
		if cs.status != StatusRunning {
			continue
		}
		spec := cs.agg.Spec
		live = append(live, journalRecord{Op: opCampaign, ID: cs.id, Key: cs.key, Camp: &spec})
	}
	s.cmu.Unlock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		jb := s.jobs[id]
		jb.mu.Lock()
		status := jb.status
		jb.mu.Unlock()
		if status == StatusQueued || status == StatusRunning {
			live = append(live, journalRecord{Op: opAccept, ID: jb.id, Key: jb.key, Spec: jb.spec})
		}
	}
	return live
}

// maybeCompactJournal rewrites the journal down to its live records
// once it crosses Options.JournalCompactBytes. The snapshot runs under
// jmu — the admission lock — so no accept can slip between snapshot
// and rewrite; the rewrite itself is tmp+rename (journal.compact), so
// a crash mid-compaction leaves either the old journal or the new one,
// never a torn hybrid.
func (s *Server) maybeCompactJournal() {
	if s.jl == nil || s.opts.JournalCompactBytes <= 0 || s.jl.size() < s.opts.JournalCompactBytes {
		return
	}
	if !s.compacting.CompareAndSwap(false, true) {
		return
	}
	defer s.compacting.Store(false)
	s.jmu.Lock()
	//reprolint:allow lockheld compaction must exclude concurrent accepts or the rewritten journal tears against admission order
	err := s.jl.compact(s.liveRecords())
	s.jmu.Unlock()
	if err == nil {
		s.compactions.Inc()
	}
}
