package serve

// Campaign orchestrator tests: the streaming aggregation tier over the
// serve/store/engine stack. The acceptance invariant throughout is
// byte-identity — the aggregate a campaign converges to over HTTP
// (streamed, crashed-and-resumed, or resubmitted from the store) must
// equal the sequential in-process fold of the same generator spec,
// byte for byte.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/metrics"
	"repro/internal/report"
)

// smallCampaign is the 8-cell spec shared with internal/campaign's
// tests: 2 faults × 2 intensities × 2 seeds, short prefix and suffix.
const smallCampaign = `{
  "faults": ["babbling-idiot", "stuck-line"],
  "intensities": {"min": 0.25, "max": 1.0, "steps": 2},
  "seeds": {"base": 1, "count": 2},
  "prefix_events": 60,
  "suffix_events": 25
}`

// foldCampaign computes the in-process reference bytes for a spec.
func foldCampaign(t *testing.T, specJSON string) []byte {
	t.Helper()
	var spec campaign.Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		t.Fatal(err)
	}
	agg, err := campaign.Fold(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	body, err := report.EncodeCampaign(agg)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postCampaign(t *testing.T, url, spec string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, err := readAllClose(resp)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func readAllClose(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// sameJSON compares two JSON documents modulo whitespace: view
// endpoints re-indent the embedded aggregate, so only the standalone
// body endpoints (resubmit, GET /v1/results/{key}) are compared as
// exact bytes.
func sameJSON(t *testing.T, a, b []byte) bool {
	t.Helper()
	var ca, cb bytes.Buffer
	if err := json.Compact(&ca, a); err != nil {
		t.Fatalf("compact: %v: %s", err, a)
	}
	if err := json.Compact(&cb, b); err != nil {
		t.Fatalf("compact: %v: %s", err, b)
	}
	return bytes.Equal(ca.Bytes(), cb.Bytes())
}

// waitCampaignDone polls GET /v1/campaigns/{id} until terminal and
// returns the final view.
func waitCampaignDone(t *testing.T, url, id string) campaignView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := get(t, url+"/v1/campaigns/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll campaign %s: %d %s", id, resp.StatusCode, body)
		}
		var v campaignView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusRunning {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never finished: %+v", id, v)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCampaignStreamConvergesToLocalFold is the tentpole acceptance
// test at small scale: submit a campaign over HTTP, follow the chunked
// stream to its terminal line, and require the final aggregate to be
// byte-identical to the sequential in-process fold. Then the finished
// campaign must be servable from every angle — poll, resubmit (cache
// tier), and GET /v1/results/{key} — with the same bytes.
func TestCampaignStreamConvergesToLocalFold(t *testing.T) {
	want := foldCampaign(t, smallCampaign)
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Options{Workers: 2, Registry: reg})

	resp, body := postCampaign(t, ts.URL, smallCampaign)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted campaignView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.TotalCells != 8 || accepted.Status != StatusRunning {
		t.Fatalf("unexpected acceptance view: %+v", accepted)
	}

	// Follow the stream: progress must be monotone, every chunk a valid
	// view, the last chunk terminal.
	sresp, err := http.Get(ts.URL + "/v1/campaigns/" + accepted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stream: %d", sresp.StatusCode)
	}
	var last campaignView
	prevDone := -1
	lines := 0
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream chunk %d: %v: %s", lines, err, sc.Bytes())
		}
		if last.Done < prevDone {
			t.Fatalf("stream progress went backwards: %d after %d", last.Done, prevDone)
		}
		prevDone = last.Done
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || last.Status != StatusDone || last.Done != 8 {
		t.Fatalf("stream ended without a terminal chunk: %d lines, last %+v", lines, last)
	}
	if !sameJSON(t, last.Aggregate, want) {
		t.Fatalf("streamed final aggregate diverges from local fold:\n%s\n%s", last.Aggregate, want)
	}
	if last.Errors != 0 {
		t.Fatalf("campaign finished with %d cell errors", last.Errors)
	}

	// Poll view agrees.
	final := waitCampaignDone(t, ts.URL, accepted.ID)
	if !sameJSON(t, final.Aggregate, want) {
		t.Fatal("polled aggregate diverges from local fold")
	}

	// Resubmission short-circuits on the stored aggregate.
	r2, b2 := postCampaign(t, ts.URL, smallCampaign)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: %d %s", r2.StatusCode, b2)
	}
	if src := r2.Header.Get("X-Cache"); src != "hit" && src != "store" {
		t.Fatalf("resubmit served X-Cache %q, want a cache tier", src)
	}
	if !bytes.Equal(b2, want) {
		t.Fatal("resubmitted campaign bytes diverge from local fold")
	}

	// The final document resolves by content address too.
	r3, b3 := get(t, ts.URL+"/v1/results/"+final.Key)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("results by key: %d %s", r3.StatusCode, b3)
	}
	if !bytes.Equal(b3, want) {
		t.Fatal("result-by-key bytes diverge from local fold")
	}

	// Warm-prefix cell dedupe is observable: 8 distinct cells ran as 8
	// jobs, and the aggregate merged exactly 8 cells.
	if got := reg.Counter("repro_campaign_cells_merged_total").Value(); got != 8 {
		t.Fatalf("merged %d cells, want 8", got)
	}
}

// TestCampaignCrashMidCampaignResumesByteIdentical is the crashtest
// oracle extended to campaigns: the journal dies mid-campaign (after
// the campaign record and a couple of cell accepts), the daemon is torn
// down, and a second daemon on the same data dir must resume the
// campaign under its original id and converge to the exact bytes of an
// uninterrupted local fold.
func TestCampaignCrashMidCampaignResumesByteIdentical(t *testing.T) {
	want := foldCampaign(t, smallCampaign)
	dir := t.TempDir()

	reg1 := metrics.NewRegistry()
	s1, err := New(Options{Workers: 1, DataDir: dir, Registry: reg1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	// Kill after 3 more records: the campaign record plus two cell
	// accepts reach disk; everything after is lost, as in a SIGKILL.
	s1.jl.kill(3)
	resp, body := postCampaign(t, ts1.URL, smallCampaign)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted campaignView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	// Let the dying daemon settle: the two accepted cells run (their
	// results reach the store; their terminal records die with the
	// journal), the rest are refused. Shutdown's compaction fails on the
	// dead journal, preserving the crash state.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()
	ts1.Close()

	reg2 := metrics.NewRegistry()
	s2, err := New(Options{Workers: 2, DataDir: dir, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	waitReady(t, s2)
	if got := reg2.Counter("repro_campaign_resumed_total").Value(); got != 1 {
		t.Fatalf("resumed %d campaigns, want 1", got)
	}

	// Same id, eventual completion, identical bytes.
	final := waitCampaignDone(t, ts2.URL, accepted.ID)
	if final.Status != StatusDone || final.Errors != 0 {
		t.Fatalf("resumed campaign did not finish cleanly: %+v", final)
	}
	if !sameJSON(t, final.Aggregate, want) {
		t.Fatalf("resumed aggregate diverges from uninterrupted fold:\n%s\n%s", final.Aggregate, want)
	}
	// At least the two pre-crash cells refolded from the store.
	if hits := reg2.Counter("repro_campaign_cell_cache_hits_total").Value(); hits < 1 {
		t.Fatalf("resume refolded %d cells from the store, want ≥ 1", hits)
	}
}

// TestCampaignJournalLiveCompaction drives a campaign with a 1-byte
// compaction threshold — every retirement triggers a rewrite — and
// requires (a) compactions actually ran concurrently with admission,
// (b) the journal ends small despite dozens of records of traffic,
// (c) a torn tail injected after the fact is dropped on reopen, and
// (d) the restarted daemon replays nothing yet serves the campaign
// from the store byte-identically.
func TestCampaignJournalLiveCompaction(t *testing.T) {
	want := foldCampaign(t, smallCampaign)
	dir := t.TempDir()

	reg1 := metrics.NewRegistry()
	s1, err := New(Options{Workers: 2, DataDir: dir, Registry: reg1, JournalCompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	resp, body := postCampaign(t, ts1.URL, smallCampaign)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted campaignView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	final := waitCampaignDone(t, ts1.URL, accepted.ID)
	if final.Status != StatusDone {
		t.Fatalf("campaign did not finish: %+v", final)
	}
	if !sameJSON(t, final.Aggregate, want) {
		t.Fatal("aggregate diverges from local fold under live compaction")
	}
	if got := reg1.Counter("repro_journal_compactions_total").Value(); got < 1 {
		t.Fatalf("live compaction never ran (%d)", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	ts1.Close()

	wal := filepath.Join(dir, "journal.wal")
	if fi, err := os.Stat(wal); err != nil {
		t.Fatal(err)
	} else if fi.Size() != 0 {
		// Clean drain with no live campaigns compacts to empty.
		t.Fatalf("journal holds %d bytes after clean drain, want 0", fi.Size())
	}
	// Torn-tail injection: garbage appended where a half-written record
	// would be must be truncated away on reopen, not parsed, not fatal.
	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("\x00\x00\x00\x99torn-half-record")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg2 := metrics.NewRegistry()
	s2, err := New(Options{Workers: 1, DataDir: dir, Registry: reg2, JournalCompactBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	waitReady(t, s2)
	if got := reg2.Counter("repro_journal_torn_tail_total").Value(); got != 1 {
		t.Fatalf("torn tail not detected (%d)", got)
	}
	if got := reg2.Counter("repro_journal_replayed_jobs_total").Value(); got != 0 {
		t.Fatalf("replayed %d jobs after compaction, want 0", got)
	}
	r2, b2 := postCampaign(t, ts2.URL, smallCampaign)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit after restart: %d %s", r2.StatusCode, b2)
	}
	if !bytes.Equal(b2, want) {
		t.Fatal("stored campaign bytes diverge after compaction + restart")
	}
}

// TestCampaignSingleflight pins campaign-level dedupe: an identical
// spec submitted while the first is still running attaches to the same
// campaign id instead of expanding a second fleet of cells.
func TestCampaignSingleflight(t *testing.T) {
	release := make(chan struct{})
	gated := func(ctx context.Context, sp *Spec) ([]byte, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		// A syntactically valid cell document with no latency samples:
		// enough for the fold to complete deterministically.
		return []byte(fmt.Sprintf(`{"spec": %s, "fork_us": 0, "count": 0, "min_cycles": 0, "max_cycles": 0, "sum_cycles": 0, "grants": 0, "denied": 0, "interference_cycles": 0, "budget_cycles": 0, "victim_max_cycles": 0, "bound_cycles": 0, "bound_note": "", "pass": true, "violation": "", "fingerprint": ""}`,
			mustJSON(sp.Cell))), nil
	}
	_, ts := newTestServer(t, Options{Workers: 2, QueueSize: 64, Executor: gated})

	r1, b1 := postCampaign(t, ts.URL, smallCampaign)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d %s", r1.StatusCode, b1)
	}
	var v1 campaignView
	if err := json.Unmarshal(b1, &v1); err != nil {
		t.Fatal(err)
	}
	r2, b2 := postCampaign(t, ts.URL, smallCampaign)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d %s", r2.StatusCode, b2)
	}
	var v2 campaignView
	if err := json.Unmarshal(b2, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID {
		t.Fatalf("identical in-flight campaigns got distinct ids %s and %s", v1.ID, v2.ID)
	}
	close(release)
	final := waitCampaignDone(t, ts.URL, v1.ID)
	if final.Status != StatusDone || final.Done != 8 {
		t.Fatalf("campaign did not finish: %+v", final)
	}
}

func mustJSON(v any) string {
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(buf)
}
