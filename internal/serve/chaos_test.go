package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func postChaos(t *testing.T, url, spec string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/chaos", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestChaosEndpoint: POST /v1/chaos runs a campaign through the normal
// job path — content-addressed, cacheable, and equivalent to POST
// /v1/experiments with kind "chaos".
func TestChaosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	spec := `{"faults": ["babbling-idiot"], "intensities": [1], "events": 80, "wait": true}`

	r1, b1 := postChaos(t, ts.URL, spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/chaos: %d %s", r1.StatusCode, b1)
	}
	var view struct {
		FailedRuns int `json:"failed_runs"`
		Runs       []struct {
			Fault string `json:"fault"`
			OK    bool   `json:"ok"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b1, &view); err != nil {
		t.Fatalf("chaos body: %v\n%s", err, b1)
	}
	if len(view.Runs) != 1 || view.Runs[0].Fault != "babbling-idiot" {
		t.Fatalf("unexpected campaign shape: %s", b1)
	}
	if view.FailedRuns != 0 || !view.Runs[0].OK {
		t.Fatalf("monitored campaign failed the oracle: %s", b1)
	}

	// Same campaign again: served from the cache.
	r2, b2 := postChaos(t, ts.URL, spec)
	if r2.Header.Get("X-Cache") != "hit" || !bytes.Equal(b1, b2) {
		t.Fatal("identical chaos campaign missed the cache")
	}

	// The generic experiments route addresses the same content.
	r3, b3 := post(t, ts.URL, `{"kind": "chaos", "events": 80, "chaos": {"faults": ["babbling-idiot"], "intensities": [1]}, "wait": true}`)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("kind chaos via /v1/experiments: %d %s", r3.StatusCode, b3)
	}
	if r3.Header.Get("X-Job-Key") != r1.Header.Get("X-Job-Key") {
		t.Fatal("same campaign, different job keys across routes")
	}
	if r3.Header.Get("X-Cache") != "hit" || !bytes.Equal(b1, b3) {
		t.Fatal("equivalent chaos spec missed the cache")
	}
}

// An ablated campaign is a valid job — it completes with failed runs
// and reproducers in the body, not an HTTP error.
func TestChaosAblationJobSucceedsWithFailedRuns(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := postChaos(t, ts.URL,
		`{"faults": ["babbling-idiot"], "intensities": [1], "events": 80, "disable_monitor": true, "wait": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var view struct {
		FailedRuns int `json:"failed_runs"`
		Runs       []struct {
			Repro *struct {
				Replay string `json:"replay"`
			} `json:"repro"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if view.FailedRuns != 1 || view.Runs[0].Repro == nil || view.Runs[0].Repro.Replay == "" {
		t.Fatalf("ablated campaign lacks failed run + reproducer: %s", body)
	}
}

func TestChaosSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for name, spec := range map[string]string{
		"unknown fault":     `{"faults": ["no-such-model"]}`,
		"intensity too big": `{"intensities": [1.5]}`,
		"negative events":   `{"events": -1}`,
	} {
		if resp, body := postChaos(t, ts.URL, spec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", name, resp.StatusCode, body)
		}
	}
	// A chaos document on a non-chaos kind is rejected.
	if resp, body := post(t, ts.URL, `{"kind": "fig6a", "chaos": {}}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("chaos doc on fig6a: %d %s, want 400", resp.StatusCode, body)
	}
}

// TestPanicIsolation: a job that panics the engine fails that job with
// the panic message — and only that job; the worker, the daemon and
// subsequent jobs are unaffected.
func TestPanicIsolation(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Options{Workers: 1, Registry: reg})
	s.run = func(ctx context.Context, sp *Spec) ([]byte, error) {
		if sp.Kind == "fig7" {
			panic("poisoned scenario")
		}
		return []byte("{}\n"), nil
	}

	resp, body := post(t, ts.URL, `{"kind": "fig7", "wait": true}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "poisoned scenario") {
		t.Fatalf("500 body does not carry the panic message: %s", body)
	}
	if got := reg.Counter("repro_server_jobs_panicked_total").Value(); got != 1 {
		t.Fatalf("panicked counter = %d, want 1", got)
	}

	// The job is recorded as failed, pollable like any other failure.
	var v jobView
	s.jmu.Lock()
	for _, jb := range s.jobs {
		v = jb.view(false)
	}
	s.jmu.Unlock()
	if v.Status != StatusFailed || !strings.Contains(v.Error, "poisoned scenario") {
		t.Fatalf("job after panic: %+v, want failed with panic message", v)
	}

	// The daemon keeps serving on the same (sole) worker.
	resp, body = post(t, ts.URL, `{"kind": "fig6a", "wait": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job after panic: %d %s", resp.StatusCode, body)
	}
}
