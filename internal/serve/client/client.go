// Package client is the self-healing HTTP client for the internal/serve
// simulation daemon: it submits experiment and chaos-campaign specs and
// transparently rides out the daemon's transient refusals. A 429 (queue
// full) or 503 (draining/restarting) response is not an error to a
// caller — it is backpressure — so the client retries those, honouring
// the server's Retry-After advice when present and falling back to
// capped exponential backoff with jitter when it is not. Transport
// errors (connection refused while the daemon restarts) retry on the
// same schedule. Everything else — 400 on a bad spec, 500 on a failed
// job — is a real answer and is returned immediately as a *StatusError.
//
// All waiting is context-aware: cancelling the context aborts both
// in-flight requests and backoff sleeps.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Options configures a Client. Zero values select the defaults noted
// per field.
type Options struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:8080".
	// Required.
	BaseURL string
	// HTTP is the underlying client. nil = http.DefaultClient.
	HTTP *http.Client
	// MaxRetries bounds how many times a retryable response is retried
	// (so a request is attempted at most MaxRetries+1 times). 0 = 4.
	// Negative disables retries.
	MaxRetries int
	// BaseBackoff is the first fallback delay when the server sends no
	// Retry-After; it doubles per attempt. 0 = 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps both the fallback schedule and any Retry-After
	// advice. 0 = 5s.
	MaxBackoff time.Duration
	// PollInterval is Await's cadence between successful status reads
	// that are not yet terminal. 0 = 50ms.
	PollInterval time.Duration

	// Test seams. Sleep waits for d or until ctx is done (nil = timer
	// sleep); Jitter perturbs a fallback delay (nil = uniform in
	// [d/2, d]); Now feeds HTTP-date Retry-After parsing (nil =
	// time.Now).
	Sleep  func(ctx context.Context, d time.Duration) error
	Jitter func(d time.Duration) time.Duration
	Now    func() time.Time
}

func (o *Options) fill() error {
	if o.BaseURL == "" {
		return errors.New("client: Options.BaseURL is required")
	}
	o.BaseURL = strings.TrimRight(o.BaseURL, "/")
	if o.HTTP == nil {
		o.HTTP = http.DefaultClient
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 100 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 5 * time.Second
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = sleepCtx
	}
	if o.Jitter == nil {
		o.Jitter = func(d time.Duration) time.Duration {
			return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StatusError is a non-retryable (or retries-exhausted) HTTP response:
// the status code plus the server's {"error": ...} message when the
// body carried one.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("client: server returned %d", e.Code)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Code, e.Message)
}

// giveUp builds the retries-exhausted error. When the final failure
// was a transport error but an earlier attempt got a real server
// response, that response's status and (truncated) message ride along
// — debugging a 504-after-retries must not lose what the server said.
func giveUp(what string, attempts int, lastErr error, lastResp *StatusError) error {
	var se *StatusError
	if lastResp != nil && !errors.As(lastErr, &se) {
		return fmt.Errorf("client: %s: giving up after %d attempts: %w (last server response: %d: %s)",
			what, attempts, lastErr, lastResp.Code, truncateMsg(lastResp.Message))
	}
	return fmt.Errorf("client: %s: giving up after %d attempts: %w", what, attempts, lastErr)
}

// truncateMsg bounds a server message quoted inside an error.
func truncateMsg(msg string) string {
	const max = 200
	if len(msg) <= max {
		return msg
	}
	return msg[:max] + "…"
}

// Result is a completed submission.
type Result struct {
	// Body is the experiment's JSON result document.
	Body []byte
	// JobKey is the content address (X-Job-Key).
	JobKey string
	// CacheHit reports whether the daemon served the result without
	// recomputation — from either cache tier (X-Cache "hit" or, since
	// the daemon grew a durable store, "store").
	CacheHit bool
	// CacheSource is the raw X-Cache value: "hit" (memory tier),
	// "store" (durable tier, e.g. just after a daemon restart) or
	// "miss" (computed for this request).
	CacheSource string
	// Retries is how many retryable refusals were absorbed before this
	// result arrived.
	Retries int
}

// Job mirrors the daemon's GET /v1/jobs/{id} response.
type Job struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Key    string          `json:"key"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Client talks to one serve daemon. Safe for concurrent use.
type Client struct {
	opts Options
}

// New validates opts and returns a Client.
func New(opts Options) (*Client, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	return &Client{opts: opts}, nil
}

// Submit posts spec (anything that marshals to a /v1/experiments
// document; set "wait": true for a synchronous result) and returns the
// result body, retrying through 429/503 backpressure.
func (c *Client) Submit(ctx context.Context, spec any) (*Result, error) {
	return c.post(ctx, "/v1/experiments", spec)
}

// Chaos posts a fault-injection campaign spec to /v1/chaos with the
// same retry contract as Submit.
func (c *Client) Chaos(ctx context.Context, spec any) (*Result, error) {
	return c.post(ctx, "/v1/chaos", spec)
}

// Campaign mirrors the daemon's campaign view: lifecycle state plus
// the current (running) or final (done) streaming aggregate.
type Campaign struct {
	ID         string          `json:"id"`
	Status     string          `json:"status"`
	Key        string          `json:"key"`
	TotalCells int             `json:"total_cells"`
	Done       int             `json:"done"`
	Errors     int             `json:"errors"`
	Violations int             `json:"violations"`
	Error      string          `json:"error,omitempty"`
	Aggregate  json.RawMessage `json:"aggregate,omitempty"`
}

// Terminal reports whether the campaign reached a final state.
func (cv *Campaign) Terminal() bool { return cv.Status == "done" || cv.Status == "failed" }

// SubmitCampaign posts a generator spec to /v1/campaigns with the same
// retry contract as Submit. A finished campaign is answered from the
// store (the Result holds the final aggregate; Campaign is nil); a
// fresh or in-flight campaign is accepted with a 202 (the Campaign
// holds the id to stream or await; Result is nil).
func (c *Client) SubmitCampaign(ctx context.Context, spec any) (*Campaign, *Result, error) {
	resp, retries, err := c.postRetry(ctx, "/v1/campaigns", spec)
	if err != nil {
		return nil, nil, err
	}
	switch resp.code {
	case http.StatusOK:
		return nil, &Result{
			Body:        resp.body,
			JobKey:      resp.jobKey,
			CacheHit:    resp.cacheSource == "hit" || resp.cacheSource == "store",
			CacheSource: resp.cacheSource,
			Retries:     retries,
		}, nil
	case http.StatusAccepted:
		var cv Campaign
		if err := json.Unmarshal(resp.body, &cv); err != nil {
			return nil, nil, fmt.Errorf("client: campaign acceptance: %v", err)
		}
		return &cv, nil, nil
	default:
		return nil, nil, statusError(resp.code, resp.body)
	}
}

// CampaignStatus reads GET /v1/campaigns/{id} once.
func (c *Client) CampaignStatus(ctx context.Context, id string) (*Campaign, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+"/v1/campaigns/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, body)
	}
	var cv Campaign
	if err := json.Unmarshal(body, &cv); err != nil {
		return nil, fmt.Errorf("client: campaign %s: %v", id, err)
	}
	return &cv, nil
}

// AwaitCampaign polls GET /v1/campaigns/{id} until the campaign is
// terminal, riding out daemon restarts exactly like Await: transport
// errors and 429/503 retry on the backoff schedule with the failure
// budget resetting after every successful read. Campaigns are
// resumable by construction — the restarted daemon replays the
// generator spec from its journal and refolds under the same id — so
// the poll simply continues. A 404 with a known key resolves the final
// aggregate from the store (the id aged out of retention after
// completion); a 404 without one is final.
func (c *Client) AwaitCampaign(ctx context.Context, id, key string) (*Campaign, error) {
	failures := 0
	var lastErr error
	var lastResp *StatusError
	for {
		cv, err := c.CampaignStatus(ctx, id)
		switch {
		case err == nil:
			failures = 0
			if cv.Terminal() {
				return cv, nil
			}
			if err := c.opts.Sleep(ctx, c.opts.PollInterval); err != nil {
				return nil, err
			}
			continue
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil, err
		}
		var se *StatusError
		if errors.As(err, &se) && !retryable(se.Code) {
			if se.Code == http.StatusNotFound && key != "" {
				if body, rerr := c.ResultByKey(ctx, key); rerr == nil {
					return &Campaign{ID: id, Status: "done", Key: key, Aggregate: body}, nil
				}
			}
			return nil, err
		}
		failures++
		lastErr = err
		if errors.As(err, &se) {
			lastResp = se
		}
		if failures > c.opts.MaxRetries {
			return nil, giveUp("awaiting campaign "+id, failures, lastErr, lastResp)
		}
		if err := c.opts.Sleep(ctx, c.backoff(failures-1)); err != nil {
			return nil, err
		}
	}
}

// StreamCampaign follows GET /v1/campaigns/{id}/stream, invoking fn
// for every incremental aggregate chunk until the terminal chunk
// (after which it returns nil), fn returns an error, or the connection
// drops (the returned error; callers ride out a daemon restart by
// falling back to AwaitCampaign — campaign ids survive restarts).
func (c *Client) StreamCampaign(ctx context.Context, id string, fn func(*Campaign) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+"/v1/campaigns/"+id+"/stream", nil)
	if err != nil {
		return err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return statusError(resp.StatusCode, body)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var cv Campaign
		if err := dec.Decode(&cv); err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("client: campaign %s stream ended before a terminal chunk", id)
			}
			return err
		}
		if fn != nil {
			if err := fn(&cv); err != nil {
				return err
			}
		}
		if cv.Terminal() {
			return nil
		}
	}
}

// JobStatus polls GET /v1/jobs/{id}. Polling does not retry on 429/503
// — status reads are cheap and the caller is already in a poll loop.
func (c *Client) JobStatus(ctx context.Context, id string) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, body)
	}
	var jb Job
	if err := json.Unmarshal(body, &jb); err != nil {
		return nil, fmt.Errorf("client: job %s: %v", id, err)
	}
	return &jb, nil
}

// Await polls GET /v1/jobs/{id} until the job reaches a terminal
// status (done, failed or cancelled) and returns that final view. It
// rides out a daemon restart mid-poll: transport errors (connection
// refused while the process is down) and 429/503 responses (the
// replaying daemon gating on /readyz refuses work the same way) retry
// on the backoff schedule, and the budget of MaxRetries consecutive
// failures resets after every successful read — the crash-safe daemon
// keeps job ids stable across restarts, so the id stays valid.
//
// A 404 is no longer unconditionally final: job ids age out of the
// daemon's retention window while the result bytes live on in the
// durable store, so when the caller supplies the job's content address
// (key — every 202 carries it as X-Job-Key) the client first resolves
// the terminal state via GET /v1/results/{key}. Only when that also
// misses, or no key is known (key == ""), does the 404 mean the work
// is lost.
func (c *Client) Await(ctx context.Context, id, key string) (*Job, error) {
	failures := 0
	var lastErr error
	var lastResp *StatusError
	for {
		jb, err := c.JobStatus(ctx, id)
		switch {
		case err == nil:
			failures = 0
			switch jb.Status {
			case "done", "failed", "cancelled":
				return jb, nil
			}
			if err := c.opts.Sleep(ctx, c.opts.PollInterval); err != nil {
				return nil, err
			}
			continue
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil, err
		}
		var se *StatusError
		if errors.As(err, &se) && !retryable(se.Code) {
			if se.Code == http.StatusNotFound && key != "" {
				if body, rerr := c.ResultByKey(ctx, key); rerr == nil {
					return &Job{ID: id, Status: "done", Key: key, Result: body}, nil
				}
			}
			return nil, err
		}
		failures++
		lastErr = err
		if errors.As(err, &se) {
			lastResp = se
		}
		if failures > c.opts.MaxRetries {
			return nil, giveUp("awaiting job "+id, failures, lastErr, lastResp)
		}
		if err := c.opts.Sleep(ctx, c.backoff(failures-1)); err != nil {
			return nil, err
		}
	}
}

// ResultByKey fetches a stored result body by content address (GET
// /v1/results/{key}) — the escape hatch when a job or campaign id has
// aged out of retention but its bytes are durable.
func (c *Client) ResultByKey(ctx context.Context, key string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.BaseURL+"/v1/results/"+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp.StatusCode, body)
	}
	return body, nil
}

func (c *Client) post(ctx context.Context, path string, spec any) (*Result, error) {
	resp, retries, err := c.postRetry(ctx, path, spec)
	if err != nil {
		return nil, err
	}
	if resp.code != http.StatusOK && resp.code != http.StatusAccepted {
		return nil, statusError(resp.code, resp.body)
	}
	return &Result{
		Body:        resp.body,
		JobKey:      resp.jobKey,
		CacheHit:    resp.cacheSource == "hit" || resp.cacheSource == "store",
		CacheSource: resp.cacheSource,
		Retries:     retries,
	}, nil
}

// postRetry drives one POST through the backpressure retry loop and
// returns the first non-retryable response.
func (c *Client) postRetry(ctx context.Context, path string, spec any) (*response, int, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, 0, fmt.Errorf("client: encoding spec: %v", err)
	}
	var lastErr error
	var lastResp *StatusError
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, attempt, err
		}
		resp, err := c.attempt(ctx, path, payload)
		switch {
		case err == nil && !retryable(resp.code):
			return resp, attempt, nil
		case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
			return nil, attempt, err
		case err != nil:
			lastErr = err
		default:
			lastResp = statusError(resp.code, resp.body)
			lastErr = lastResp
		}
		if attempt >= c.opts.MaxRetries {
			return nil, attempt, giveUp("posting "+path, attempt+1, lastErr, lastResp)
		}
		delay := c.backoff(attempt)
		if resp != nil {
			if adv, ok := parseRetryAfter(resp.retryAfter, c.opts.Now()); ok {
				delay = min(adv, c.opts.MaxBackoff)
			}
		}
		if err := c.opts.Sleep(ctx, delay); err != nil {
			return nil, attempt, err
		}
	}
}

// response is the slice of an *http.Response the retry loop needs.
type response struct {
	code        int
	body        []byte
	jobKey      string
	cacheSource string
	retryAfter  string
}

func (c *Client) attempt(ctx context.Context, path string, payload []byte) (*response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.opts.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	return &response{
		code:        resp.StatusCode,
		body:        body,
		jobKey:      resp.Header.Get("X-Job-Key"),
		cacheSource: resp.Header.Get("X-Cache"),
		retryAfter:  resp.Header.Get("Retry-After"),
	}, nil
}

func retryable(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff is the fallback schedule when the server gives no Retry-After
// advice: BaseBackoff doubled per attempt, capped, then jittered.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.opts.BaseBackoff
	for i := 0; i < attempt && d < c.opts.MaxBackoff; i++ {
		d *= 2
	}
	return c.opts.Jitter(min(d, c.opts.MaxBackoff))
}

// parseRetryAfter accepts both RFC 9110 forms: delay seconds and an
// HTTP-date.
func parseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := at.Sub(now); d > 0 {
			return d, true
		}
		return 0, true // date in the past: retry immediately
	}
	return 0, false
}

func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading response: %v", err)
	}
	return body, nil
}

func statusError(code int, body []byte) *StatusError {
	var doc struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		msg = doc.Error
	}
	return &StatusError{Code: code, Message: msg}
}
