package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newClient builds a client against ts with instant, recorded sleeps
// and identity jitter, so retry behaviour is asserted on the requested
// delays rather than on wall-clock time.
func newClient(t *testing.T, ts *httptest.Server, opts Options) (*Client, *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	opts.BaseURL = ts.URL
	opts.Sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slept = append(slept, d)
		return nil
	}
	if opts.Jitter == nil {
		opts.Jitter = func(d time.Duration) time.Duration { return d }
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, &slept
}

// A 429 with Retry-After advice is absorbed: the client sleeps exactly
// the advised delay and the caller sees only the eventual 200.
func TestRetryAfterSecondsHonoured(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error": "job queue full (64 pending)"}`, http.StatusTooManyRequests)
			return
		}
		w.Header().Set("X-Job-Key", "k123")
		w.Write([]byte(`{"ok": true}`))
	}))
	defer ts.Close()

	c, slept := newClient(t, ts, Options{})
	res, err := c.Submit(context.Background(), map[string]any{"kind": "fig6a", "wait": true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 || res.JobKey != "k123" || string(res.Body) != `{"ok": true}` {
		t.Fatalf("result = %+v", res)
	}
	if len(*slept) != 2 || (*slept)[0] != 3*time.Second || (*slept)[1] != 3*time.Second {
		t.Fatalf("slept %v, want [3s 3s] from Retry-After", *slept)
	}
}

// An HTTP-date Retry-After works too, measured against the injected
// clock; the advice is capped at MaxBackoff.
func TestRetryAfterHTTPDateAndCap(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", now.Add(2*time.Second).Format(http.TimeFormat))
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case 2:
			w.Header().Set("Retry-After", "60") // above the 5s cap
			http.Error(w, "draining", http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()

	c, slept := newClient(t, ts, Options{MaxBackoff: 5 * time.Second, Now: func() time.Time { return now }})
	if _, err := c.Submit(context.Background(), map[string]any{}); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{2 * time.Second, 5 * time.Second}
	if len(*slept) != 2 || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
		t.Fatalf("slept %v, want %v (HTTP-date, then capped seconds)", *slept, want)
	}
}

// Without Retry-After the fallback schedule doubles from BaseBackoff up
// to MaxBackoff.
func TestExponentialBackoffFallback(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 4 {
			http.Error(w, `{"error": "busy"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c, slept := newClient(t, ts, Options{BaseBackoff: 100 * time.Millisecond, MaxBackoff: 300 * time.Millisecond})
	res, err := c.Submit(context.Background(), map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 4 {
		t.Fatalf("retries = %d, want 4", res.Retries)
	}
	want := []time.Duration{100, 200, 300, 300} // ms, doubling then capped
	for i, w := range want {
		if (*slept)[i] != time.Duration(w)*time.Millisecond {
			t.Fatalf("slept %v, want %v ms", *slept, want)
		}
	}
}

// Jitter is applied to fallback delays (not to Retry-After advice).
func TestJitterApplied(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c, slept := newClient(t, ts, Options{
		BaseBackoff: 100 * time.Millisecond,
		Jitter:      func(d time.Duration) time.Duration { return d + 7 },
	})
	if _, err := c.Submit(context.Background(), map[string]any{}); err != nil {
		t.Fatal(err)
	}
	if (*slept)[0] != 100*time.Millisecond+7 {
		t.Fatalf("slept %v, want jittered 100ms+7ns", (*slept)[0])
	}
}

// When the server never recovers, retries stop after MaxRetries and the
// last refusal is wrapped in the returned error.
func TestRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error": "job queue full (64 pending)"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c, _ := newClient(t, ts, Options{MaxRetries: 3})
	_, err := c.Submit(context.Background(), map[string]any{})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want wrapped 429 StatusError", err)
	}
	if se.Message != "job queue full (64 pending)" {
		t.Fatalf("message = %q", se.Message)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4 (1 + 3 retries)", got)
	}
}

// TestGiveUpSurfacesLastServerResponse: when the final failure is a
// transport error but an earlier attempt got a real server response,
// the give-up error carries that response's status and message —
// otherwise debugging a daemon that 503s then dies loses what the
// server said.
func TestGiveUpSurfacesLastServerResponse(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, `{"error": "draining for maintenance"}`, http.StatusServiceUnavailable)
			return
		}
		// Then die mid-connection: transport errors from here on.
		hj, _ := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer ts.Close()
	c, _ := newClient(t, ts, Options{MaxRetries: 2})
	_, err := c.Submit(context.Background(), map[string]any{})
	if err == nil {
		t.Fatal("submit succeeded against a dying daemon")
	}
	if !strings.Contains(err.Error(), "last server response: 503: draining for maintenance") {
		t.Fatalf("give-up error lost the server's message: %v", err)
	}
	// When the last failure IS the server response, no duplicate suffix.
	var se *StatusError
	if errors.As(err, &se) {
		t.Fatalf("transport give-up should not unwrap to a StatusError: %v", err)
	}
}

// Non-retryable statuses return immediately: a 400 spec error must not
// burn the retry budget, and a 500 failed job is a real answer.
func TestNonRetryableStatusesReturnImmediately(t *testing.T) {
	for _, tc := range []struct {
		code int
		body string
		msg  string
	}{
		{http.StatusBadRequest, `{"error": "unknown kind \"bogus\""}`, `unknown kind "bogus"`},
		{http.StatusInternalServerError, `{"error": "job j00000001 failed: panic"}`, "job j00000001 failed: panic"},
	} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			http.Error(w, tc.body, tc.code)
		}))
		c, slept := newClient(t, ts, Options{})
		_, err := c.Submit(context.Background(), map[string]any{})
		ts.Close()
		var se *StatusError
		if !errors.As(err, &se) || se.Code != tc.code || se.Message != tc.msg {
			t.Fatalf("code %d: err = %v, want StatusError{%d, %q}", tc.code, err, tc.code, tc.msg)
		}
		if calls.Load() != 1 || len(*slept) != 0 {
			t.Fatalf("code %d: %d attempts / %d sleeps, want exactly one attempt and no sleeps", tc.code, calls.Load(), len(*slept))
		}
	}
}

// Cancelling the context aborts the backoff sleep.
func TestContextCancelDuringBackoff(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var c *Client
	var err error
	c, err = New(Options{
		BaseURL: ts.URL,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the refusal arrived; client is now waiting
			return ctx.Err()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, map[string]any{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// A connection error (daemon restarting) retries like backpressure and
// succeeds once the server is back.
func TestTransportErrorRetries(t *testing.T) {
	// Handler that works; we point the first attempts at a dead port by
	// flipping the transport through a failing RoundTripper.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	var calls atomic.Int64
	rt := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if calls.Add(1) <= 2 {
			return nil, errors.New("dial tcp: connection refused")
		}
		return http.DefaultTransport.RoundTrip(r)
	})
	c, slept := newClient(t, ts, Options{HTTP: &http.Client{Transport: rt}})
	res, err := c.Submit(context.Background(), map[string]any{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries != 2 || len(*slept) != 2 {
		t.Fatalf("retries = %d, sleeps = %d, want 2 each", res.Retries, len(*slept))
	}
}

type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// JobStatus decodes the daemon's job view and does not retry.
func TestJobStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/j00000001" {
			http.Error(w, `{"error": "unknown job"}`, http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(Job{ID: "j00000001", Status: "done", Key: "k", Result: json.RawMessage(`{"x": 1}`)})
	}))
	defer ts.Close()

	c, _ := newClient(t, ts, Options{})
	jb, err := c.JobStatus(context.Background(), "j00000001")
	if err != nil {
		t.Fatal(err)
	}
	if jb.Status != "done" || string(jb.Result) != `{"x":1}` {
		t.Fatalf("job = %+v", jb)
	}
	if _, err := c.JobStatus(context.Background(), "nope"); err == nil {
		t.Fatal("unknown job id did not error")
	}
}

// Await rides out a daemon restart mid-poll: a non-terminal read, then
// connection refusals while the process is down, then a 503 while the
// replayed backlog re-enqueues, and finally the terminal view — all
// absorbed, with the failure budget reset by each successful read.
func TestAwaitRidesOutRestart(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Attempt 3 never arrives (transport refusal), so server call 3
		// is a successful read that resets the failure budget before the
		// 503 on call 4.
		switch calls.Add(1) {
		case 1, 2, 3:
			json.NewEncoder(w).Encode(Job{ID: "j00000001", Status: "queued", Key: "k"})
		case 4:
			http.Error(w, `{"error": "server is shutting down"}`, http.StatusServiceUnavailable)
		default:
			json.NewEncoder(w).Encode(Job{ID: "j00000001", Status: "done", Key: "k", Result: json.RawMessage(`{"x": 1}`)})
		}
	}))
	defer ts.Close()

	// Call 3 never reaches the server: the daemon is "down".
	var attempts atomic.Int64
	rt := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		if attempts.Add(1) == 3 {
			return nil, errors.New("dial tcp: connection refused")
		}
		return http.DefaultTransport.RoundTrip(r)
	})
	c, slept := newClient(t, ts, Options{HTTP: &http.Client{Transport: rt}, MaxRetries: 2})
	jb, err := c.Await(context.Background(), "j00000001", "")
	if err != nil {
		t.Fatal(err)
	}
	if jb.Status != "done" || string(jb.Result) != `{"x":1}` {
		t.Fatalf("job = %+v", jb)
	}
	// poll, poll, backoff (refused), poll (recovered read resets the
	// budget), backoff (503, back at the first step).
	want := []time.Duration{
		50 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
	}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i, w := range want {
		if (*slept)[i] != w {
			t.Fatalf("slept %v, want %v (budget must reset after a successful read)", *slept, want)
		}
	}
}

// A 404 from Await is final — the id never existed or aged out of
// retention — and must not burn the retry budget.
func TestAwaitUnknownJobIsFinal(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error": "unknown job \"nope\""}`, http.StatusNotFound)
	}))
	defer ts.Close()

	c, slept := newClient(t, ts, Options{})
	_, err := c.Await(context.Background(), "nope", "")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
	if calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("%d attempts / %d sleeps, want one attempt and no sleeps", calls.Load(), len(*slept))
	}
}

// A daemon that never comes back exhausts Await's consecutive-failure
// budget and the last error is wrapped.
func TestAwaitGivesUpWhenDaemonStaysDown(t *testing.T) {
	var attempts atomic.Int64
	rt := roundTripperFunc(func(r *http.Request) (*http.Response, error) {
		attempts.Add(1)
		return nil, errors.New("dial tcp: connection refused")
	})
	var slept []time.Duration
	c, err := New(Options{
		BaseURL:    "http://127.0.0.1:0",
		HTTP:       &http.Client{Transport: rt},
		MaxRetries: 3,
		Sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
		Jitter: func(d time.Duration) time.Duration { return d },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Await(context.Background(), "j00000001", "")
	if err == nil || !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("err = %v, want wrapped transport error", err)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("attempts = %d, want 4 (1 + 3 retries)", got)
	}
	if len(slept) != 3 {
		t.Fatalf("slept %v, want 3 backoffs", slept)
	}
}

// Default jitter stays within [d/2, d] so backoff never exceeds the
// deterministic schedule.
func TestDefaultJitterRange(t *testing.T) {
	var o Options
	o.BaseURL = "http://example.invalid"
	if err := o.fill(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		d := o.Jitter(time.Second)
		if d < 500*time.Millisecond || d > time.Second {
			t.Fatalf("jitter(%v) = %v outside [d/2, d]", time.Second, d)
		}
	}
}

func TestRetryAfterParsing(t *testing.T) {
	now := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		in   string
		want time.Duration
		ok   bool
	}{
		{"", 0, false},
		{"0", 0, true},
		{"7", 7 * time.Second, true},
		{"-3", 0, false},
		{"soon", 0, false},
		{now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{now.Add(-time.Minute).Format(http.TimeFormat), 0, true}, // past date: retry now
	} {
		got, ok := parseRetryAfter(tc.in, now)
		if got != tc.want || ok != tc.ok {
			t.Errorf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestNewRequiresBaseURL(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without BaseURL did not error")
	}
	if _, err := New(Options{BaseURL: "http://x/", MaxRetries: -1}); err != nil {
		t.Fatal(err)
	}
}

// A 404 on the job id with a known content address is not lost work:
// the id aged out of the daemon's retention window while the bytes
// stayed durable, so Await resolves the terminal state from the store
// before giving up.
func TestAwaitResolvesAgedOutJobFromStore(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
			http.Error(w, `{"error": "unknown job \"j00000001\""}`, http.StatusNotFound)
		case r.URL.Path == "/v1/results/k123":
			w.Header().Set("X-Cache", "store")
			w.Write([]byte(`{"x": 1}`))
		default:
			http.Error(w, `{"error": "unexpected path"}`, http.StatusNotFound)
		}
	}))
	defer ts.Close()

	c, slept := newClient(t, ts, Options{})
	jb, err := c.Await(context.Background(), "j00000001", "k123")
	if err != nil {
		t.Fatal(err)
	}
	if jb.Status != "done" || jb.Key != "k123" || string(jb.Result) != `{"x": 1}` {
		t.Fatalf("job = %+v", jb)
	}
	if len(*slept) != 0 {
		t.Fatalf("resolved from store but slept %v", *slept)
	}

	// Without a key the 404 stays final — unchanged contract.
	_, err = c.Await(context.Background(), "j00000001", "")
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want StatusError 404", err)
	}
}

// AwaitCampaign rides a restart mid-poll (transport error, then a 503
// from the replaying daemon) and returns the terminal view; a 404 with
// a key resolves the final aggregate from the store.
func TestAwaitCampaignRidesRestart(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			json.NewEncoder(w).Encode(Campaign{ID: "c000001", Status: "running", Key: "ck", TotalCells: 8, Done: 3})
		case 2:
			http.Error(w, `{"error": "server is shutting down"}`, http.StatusServiceUnavailable)
		default:
			json.NewEncoder(w).Encode(Campaign{ID: "c000001", Status: "done", Key: "ck", TotalCells: 8, Done: 8})
		}
	}))
	defer ts.Close()

	c, _ := newClient(t, ts, Options{MaxRetries: 2})
	cv, err := c.AwaitCampaign(context.Background(), "c000001", "ck")
	if err != nil {
		t.Fatal(err)
	}
	if !cv.Terminal() || cv.Done != 8 {
		t.Fatalf("campaign = %+v", cv)
	}

	// Aged-out campaign id + stored aggregate → resolved by key.
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/results/ck" {
			w.Write([]byte(`{"total_cells": 8}`))
			return
		}
		http.Error(w, `{"error": "unknown campaign"}`, http.StatusNotFound)
	}))
	defer ts2.Close()
	c2, _ := newClient(t, ts2, Options{})
	cv2, err := c2.AwaitCampaign(context.Background(), "c000001", "ck")
	if err != nil {
		t.Fatal(err)
	}
	if cv2.Status != "done" || string(cv2.Aggregate) != `{"total_cells": 8}` {
		t.Fatalf("campaign = %+v", cv2)
	}
}
