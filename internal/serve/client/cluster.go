package client

// The ring-aware client: the same consistent-hash function the nodes
// themselves use (internal/cluster.Ring), driven from the outside.
// Three behaviours distinguish it from a plain Client pointed at one
// node:
//
//   - Routing: every spec hashes to a routing key, and submissions go
//     to that key's ring owner first — the node whose cache/store will
//     hold (or already holds) the bytes — falling over to the next
//     replica, then the rest of the ring, when a node is down.
//   - Hedged reads: ResultByKey fires the owner first and, when the
//     answer has not arrived within a latency budget (a percentile of
//     recent read latencies, clamped to [HedgeMin, HedgeMax]), fires
//     the second replica in parallel and takes whichever answers
//     first. Content addressing makes hedging free of consistency
//     hazards: both answers are the same bytes.
//   - Write failover: a submission refused by a dead owner (transport
//     error or retries exhausted) moves to the next ring node. The
//     receiving node computes or peer-fetches; either way the bytes
//     are the ones the owner would have produced.
//
// The routing key is a client-side hash of the spec document, not the
// server's content address (which folds in the code revision the
// client cannot know). The two only need to agree *among routers* —
// misrouted work is still correct work, just a colder cache.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
)

// ClusterNode names one ring member and its base URL.
type ClusterNode struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ClusterOptions configures a ClusterClient.
type ClusterOptions struct {
	// Nodes is the ring membership. Required, at least one.
	Nodes []ClusterNode
	// Replicas is the replica-set size used for routing and hedging;
	// clamped to the node count. 0 = 2.
	Replicas int
	// HedgeMin floors the hedge budget (and is the budget until enough
	// latency samples exist). 0 = 20ms.
	HedgeMin time.Duration
	// HedgeMax caps the hedge budget. 0 = 2s.
	HedgeMax time.Duration
	// Template configures each per-node Client (retries, backoff,
	// polling, seams). Template.BaseURL is ignored — each node's URL
	// takes its place.
	Template Options
}

// ClusterClient routes requests across a serve ring. Safe for
// concurrent use.
type ClusterClient struct {
	ring     *cluster.Ring
	replicas int
	clients  map[string]*Client
	hedgeMin time.Duration
	hedgeMax time.Duration

	mu      sync.Mutex
	lats    []time.Duration // ring buffer of recent successful read latencies
	latPos  int
	latFull bool

	hedged    atomic.Int64
	failovers atomic.Int64
}

// latWindow is the latency sample window for the hedge budget; small
// enough to adapt, large enough for a stable p95.
const latWindow = 64

// NewCluster validates opts and builds the ring-aware client.
func NewCluster(opts ClusterOptions) (*ClusterClient, error) {
	if len(opts.Nodes) == 0 {
		return nil, errors.New("client: cluster needs at least one node")
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 2
	}
	if opts.Replicas > len(opts.Nodes) {
		opts.Replicas = len(opts.Nodes)
	}
	if opts.HedgeMin <= 0 {
		opts.HedgeMin = 20 * time.Millisecond
	}
	if opts.HedgeMax <= 0 {
		opts.HedgeMax = 2 * time.Second
	}
	names := make([]string, 0, len(opts.Nodes))
	clients := make(map[string]*Client, len(opts.Nodes))
	for _, n := range opts.Nodes {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("client: cluster node needs name and url (got %+v)", n)
		}
		if clients[n.Name] != nil {
			return nil, fmt.Errorf("client: duplicate cluster node %q", n.Name)
		}
		o := opts.Template
		o.BaseURL = n.URL
		cl, err := New(o)
		if err != nil {
			return nil, err
		}
		names = append(names, n.Name)
		clients[n.Name] = cl
	}
	return &ClusterClient{
		ring:     cluster.NewRing(names),
		replicas: opts.Replicas,
		clients:  clients,
		hedgeMin: opts.HedgeMin,
		hedgeMax: opts.HedgeMax,
		lats:     make([]time.Duration, latWindow),
	}, nil
}

// On returns the per-node client for name (nil for unknown names) —
// the escape hatch for node-pinned operations like streaming a
// campaign from its coordinator.
func (cc *ClusterClient) On(name string) *Client { return cc.clients[name] }

// RouteKey computes the deterministic routing key for a spec: hex
// SHA-256 of its JSON encoding. Every ClusterClient (and every ring
// node, for its own keys) maps a given key to the same owner.
func RouteKey(spec any) (string, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("client: encoding spec for routing: %v", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

// route returns the candidate node order for key: the replica set in
// ring-preference order, then the remaining members sorted by name.
func (cc *ClusterClient) route(key string) []string {
	order := cc.ring.Replicas(key, cc.replicas)
	seen := make(map[string]bool, len(cc.clients))
	for _, n := range order {
		seen[n] = true
	}
	rest := make([]string, 0, len(cc.clients))
	for _, n := range cc.ring.Members() {
		if !seen[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(order, rest...)
}

// Hedged reports how many reads fired a hedge request.
func (cc *ClusterClient) Hedged() int64 { return cc.hedged.Load() }

// Failovers reports how many submissions moved past a failed node.
func (cc *ClusterClient) Failovers() int64 { return cc.failovers.Load() }

// realAnswer reports whether err is a genuine server answer (a
// non-retryable status) rather than node unavailability. Unavailable
// nodes justify failover; real answers are final — the next node
// would, deterministically, say the same thing.
func realAnswer(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && !retryable(se.Code)
}

// Submit routes spec to its ring owner and fails over across the
// remaining nodes while nodes are unreachable. The first real answer
// — success or a non-retryable error — is returned.
func (cc *ClusterClient) Submit(ctx context.Context, spec any) (*Result, error) {
	key, err := RouteKey(spec)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i, name := range cc.route(key) {
		if i > 0 {
			cc.failovers.Add(1)
		}
		res, err := cc.clients[name].Submit(ctx, spec)
		if err == nil || realAnswer(err) || ctx.Err() != nil {
			return res, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("client: no cluster node answered: %w", lastErr)
}

// SubmitCampaign routes a generator spec like Submit. The returned
// coordinator name says which node accepted the campaign — campaign
// ids are node-local, so status/stream/await calls for it must go to
// On(coordinator).
func (cc *ClusterClient) SubmitCampaign(ctx context.Context, spec any) (cv *Campaign, res *Result, coordinator string, err error) {
	key, kerr := RouteKey(spec)
	if kerr != nil {
		return nil, nil, "", kerr
	}
	var lastErr error
	for i, name := range cc.route(key) {
		if i > 0 {
			cc.failovers.Add(1)
		}
		cv, res, err := cc.clients[name].SubmitCampaign(ctx, spec)
		if err == nil || realAnswer(err) || ctx.Err() != nil {
			return cv, res, name, err
		}
		lastErr = err
	}
	return nil, nil, "", fmt.Errorf("client: no cluster node accepted the campaign: %w", lastErr)
}

// ResultByKey resolves a content address across the ring with a
// hedged read: the first replica is asked immediately; if it has not
// answered within the hedge budget, the second replica is asked in
// parallel and the first success wins. Remaining nodes are tried
// sequentially only after both hedge legs fail (any node may hold the
// bytes — peer fetches spread them).
func (cc *ClusterClient) ResultByKey(ctx context.Context, key string) ([]byte, error) {
	order := cc.route(key)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type answer struct {
		body []byte
		err  error
	}
	results := make(chan answer, 2)
	started := time.Now()
	ask := func(name string) {
		body, err := cc.clients[name].ResultByKey(hctx, key)
		results <- answer{body, err}
	}
	go ask(order[0])

	legs := 1
	if len(order) > 1 {
		budget := cc.hedgeBudget()
		timer := time.NewTimer(budget)
		select {
		case a := <-results:
			timer.Stop()
			if a.err == nil {
				cc.observeLatency(time.Since(started))
				return a.body, nil
			}
			// Primary failed fast: promote the second replica from hedge
			// to only hope.
			go ask(order[1])
			legs = 1
		case <-timer.C:
			cc.hedged.Add(1)
			go ask(order[1])
			legs = 2
		case <-ctx.Done():
			timer.Stop()
			return nil, ctx.Err()
		}
	}
	var lastErr error
	for i := 0; i < legs; i++ {
		select {
		case a := <-results:
			if a.err == nil {
				cc.observeLatency(time.Since(started))
				return a.body, nil
			}
			lastErr = a.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	// Both hedge legs failed; walk the rest of the ring.
	for _, name := range order[min(2, len(order)):] {
		body, err := cc.clients[name].ResultByKey(ctx, key)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = errors.New("client: no cluster node reachable")
	}
	return nil, fmt.Errorf("client: resolving %s across the ring: %w", key, lastErr)
}

// hedgeBudget is the current wait before firing the second replica:
// the p95 of recent successful read latencies, clamped to
// [HedgeMin, HedgeMax]; HedgeMin until at least 8 samples exist.
func (cc *ClusterClient) hedgeBudget() time.Duration {
	cc.mu.Lock()
	n := cc.latPos
	if cc.latFull {
		n = len(cc.lats)
	}
	if n < 8 {
		cc.mu.Unlock()
		return cc.hedgeMin
	}
	samples := make([]time.Duration, n)
	copy(samples, cc.lats[:n])
	cc.mu.Unlock()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	p95 := samples[(len(samples)*95)/100]
	if p95 < cc.hedgeMin {
		return cc.hedgeMin
	}
	if p95 > cc.hedgeMax {
		return cc.hedgeMax
	}
	return p95
}

// observeLatency records one successful read's latency in the window.
func (cc *ClusterClient) observeLatency(d time.Duration) {
	cc.mu.Lock()
	cc.lats[cc.latPos] = d
	cc.latPos++
	if cc.latPos == len(cc.lats) {
		cc.latPos = 0
		cc.latFull = true
	}
	cc.mu.Unlock()
}

// RunCampaign drives a generator spec to its final aggregate across
// the ring: submit (with write failover), then follow the coordinator
// — stream if possible, else poll — and, if the coordinator dies with
// the final aggregate already durable somewhere, resolve the bytes by
// content address from any surviving node. onChunk (may be nil) sees
// every streamed incremental aggregate.
func (cc *ClusterClient) RunCampaign(ctx context.Context, spec any, onChunk func(*Campaign) error) ([]byte, error) {
	cv, res, coordinator, err := cc.SubmitCampaign(ctx, spec)
	if err != nil {
		return nil, err
	}
	if res != nil {
		return res.Body, nil
	}
	// However the campaign is followed, the returned bytes are always
	// resolved by content address (hedged): the status view re-encodes
	// its embedded aggregate, only the store serves the exact document.
	coord := cc.On(coordinator)
	if serr := coord.StreamCampaign(ctx, cv.ID, onChunk); serr == nil {
		final, aerr := coord.AwaitCampaign(ctx, cv.ID, cv.Key)
		if aerr == nil && final.Status == "done" {
			return cc.ResultByKey(ctx, cv.Key)
		}
	} else if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Stream or await failed (coordinator restarting or gone). The
	// campaign's journal record survives on the coordinator and its
	// handoff successors; ride restarts via a polling await first, then
	// fall back to resolving the final bytes by content address.
	if final, aerr := coord.AwaitCampaign(ctx, cv.ID, cv.Key); aerr == nil && final.Status != "done" {
		return nil, fmt.Errorf("client: campaign %s finished %s: %s", cv.ID, final.Status, final.Error)
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return cc.ResultByKey(ctx, cv.Key)
}
