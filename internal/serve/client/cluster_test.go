package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastTemplate keeps cluster-client tests quick: no real backoff.
func fastTemplate() Options {
	return Options{
		MaxRetries:  1,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Sleep:       func(ctx context.Context, d time.Duration) error { return nil },
		Jitter:      func(d time.Duration) time.Duration { return d },
	}
}

func resultHandler(body string, hits *atomic.Int64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("X-Job-Key", "k")
		w.Header().Set("X-Cache", "miss")
		w.Write([]byte(body))
	})
	mux.HandleFunc("GET /v1/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		w.Header().Set("X-Job-Key", r.PathValue("key"))
		w.Write([]byte(body))
	})
	return mux
}

func newTestCluster(t *testing.T, handlers map[string]http.Handler, opts ClusterOptions) *ClusterClient {
	t.Helper()
	for name, h := range handlers {
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		opts.Nodes = append(opts.Nodes, ClusterNode{Name: name, URL: srv.URL})
	}
	if opts.Template.Sleep == nil {
		opts.Template = fastTemplate()
	}
	cc, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}

func TestRouteKeyDeterministic(t *testing.T) {
	spec := map[string]any{"kind": "fig6a", "events": 100, "seed": 1}
	k1, err := RouteKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	k2, _ := RouteKey(spec)
	if k1 != k2 {
		t.Fatalf("routing key unstable: %s vs %s", k1, k2)
	}
	k3, _ := RouteKey(map[string]any{"kind": "fig6a", "events": 100, "seed": 2})
	if k1 == k3 {
		t.Fatal("different specs routed identically")
	}
}

func TestClusterSubmitRoutesToOwner(t *testing.T) {
	var hitsA, hitsB atomic.Int64
	cc := newTestCluster(t, map[string]http.Handler{
		"a": resultHandler(`{"from":"a"}`, &hitsA),
		"b": resultHandler(`{"from":"b"}`, &hitsB),
	}, ClusterOptions{})
	spec := map[string]any{"kind": "fig6a", "seed": 7, "wait": true}
	key, _ := RouteKey(spec)
	owner := cc.route(key)[0]
	res, err := cc.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct{ From string }
	json.Unmarshal(res.Body, &doc)
	if doc.From != owner {
		t.Fatalf("answered by %s, ring owner is %s", doc.From, owner)
	}
	if cc.Failovers() != 0 {
		t.Fatalf("failovers = %d on a healthy ring", cc.Failovers())
	}
}

func TestClusterSubmitFailsOverDeadOwner(t *testing.T) {
	// One real node; the other two URLs point at closed ports. Whatever
	// the ring picks first, the submission must land on the live node.
	live := httptest.NewServer(resultHandler(`{"ok":true}`, nil))
	t.Cleanup(live.Close)
	cc, err := NewCluster(ClusterOptions{
		Nodes: []ClusterNode{
			{Name: "a", URL: "http://127.0.0.1:1"},
			{Name: "b", URL: "http://127.0.0.1:1"},
			{Name: "c", URL: live.URL},
		},
		Template: fastTemplate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := cc.Submit(context.Background(), map[string]any{"kind": "fig6a", "wait": true})
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(res.Body) != `{"ok":true}` {
		t.Fatalf("body %q", res.Body)
	}
}

func TestClusterSubmitRealAnswerIsFinal(t *testing.T) {
	var hits400 atomic.Int64
	bad := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits400.Add(1)
		http.Error(w, `{"error": "bad spec"}`, http.StatusBadRequest)
	})
	cc := newTestCluster(t, map[string]http.Handler{"a": bad, "b": bad, "c": bad}, ClusterOptions{})
	_, err := cc.Submit(context.Background(), map[string]any{"kind": "nope"})
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if hits400.Load() != 1 {
		t.Fatalf("a deterministic 400 was retried on %d nodes", hits400.Load())
	}
}

func TestHedgedReadFiresSecondReplica(t *testing.T) {
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte("slow-bytes"))
	})
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("fast-bytes"))
	})
	// Both nodes serve every key; one is stuck. Whichever leads the
	// route, the hedge must recover the read quickly.
	cc := newTestCluster(t, map[string]http.Handler{"slow": slow, "fast": fast},
		ClusterOptions{HedgeMin: 5 * time.Millisecond, HedgeMax: 10 * time.Millisecond})
	defer close(release)
	// Find a key whose primary is the slow node.
	key := ""
	for _, k := range []string{"k1", "k2", "k3", "k4", "k5", "k6"} {
		if cc.route(k)[0] == "slow" {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key routed to slow node first")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	body, err := cc.ResultByKey(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "fast-bytes" {
		t.Fatalf("hedge lost: got %q", body)
	}
	if cc.Hedged() != 1 {
		t.Fatalf("hedged = %d, want 1", cc.Hedged())
	}
}

func TestHedgeBudgetTracksLatency(t *testing.T) {
	cc, err := NewCluster(ClusterOptions{
		Nodes:    []ClusterNode{{Name: "a", URL: "http://127.0.0.1:1"}},
		HedgeMin: 10 * time.Millisecond,
		HedgeMax: 100 * time.Millisecond,
		Template: fastTemplate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := cc.hedgeBudget(); got != 10*time.Millisecond {
		t.Fatalf("cold budget %v, want HedgeMin", got)
	}
	for i := 0; i < 20; i++ {
		cc.observeLatency(40 * time.Millisecond)
	}
	if got := cc.hedgeBudget(); got != 40*time.Millisecond {
		t.Fatalf("warm budget %v, want the p95 40ms", got)
	}
	for i := 0; i < latWindow; i++ {
		cc.observeLatency(500 * time.Millisecond)
	}
	if got := cc.hedgeBudget(); got != 100*time.Millisecond {
		t.Fatalf("saturated budget %v, want HedgeMax clamp", got)
	}
}

func TestResultByKeyWalksWholeRing(t *testing.T) {
	// Only one node holds the bytes and it is neither of the first two
	// replicas' guaranteed — serve 404 everywhere except one node and
	// assert the read still resolves.
	notFound := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error": "no"}`, http.StatusNotFound)
	})
	holder := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("the-bytes"))
	})
	cc := newTestCluster(t, map[string]http.Handler{
		"a": notFound, "b": notFound, "c": holder,
	}, ClusterOptions{HedgeMin: time.Millisecond, HedgeMax: 2 * time.Millisecond})
	key := ""
	for _, k := range []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8"} {
		r := cc.route(k)
		if r[0] != "c" && r[1] != "c" {
			key = k
			break
		}
	}
	if key == "" {
		t.Skip("no key with c outside the replica set")
	}
	body, err := cc.ResultByKey(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "the-bytes" {
		t.Fatalf("got %q", body)
	}
}
