package client

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/serve"
)

// End to end against a real daemon: a chaos campaign submitted through
// the client completes, and the identical resubmission is answered from
// the daemon's content-addressed cache.
func TestClientAgainstServeDaemon(t *testing.T) {
	s, err := serve.New(serve.Options{Workers: 1, Registry: metrics.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	c, err := New(Options{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	spec := map[string]any{
		"faults":      []string{"babbling-idiot"},
		"intensities": []float64{1},
		"events":      80,
		"wait":        true,
	}
	res, err := c.Chaos(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || res.JobKey == "" {
		t.Fatalf("first run: %+v, want a fresh keyed result", res)
	}
	var view struct {
		FailedRuns int `json:"failed_runs"`
	}
	if err := json.Unmarshal(res.Body, &view); err != nil {
		t.Fatalf("campaign body: %v\n%s", err, res.Body)
	}
	if view.FailedRuns != 0 {
		t.Fatalf("monitored campaign failed: %s", res.Body)
	}

	again, err := c.Chaos(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.JobKey != res.JobKey {
		t.Fatalf("resubmission: %+v, want cache hit on key %s", again, res.JobKey)
	}
}
