package serve

// Cluster integration: what a ring membership adds to one daemon.
//
// Three HTTP surfaces and two outbound paths, all of them safe by the
// content-addressing argument (a key names exactly one byte string, so
// any node's answer is every node's answer):
//
//   - GET /v1/peer/results/{key}: serve a stored result in the store's
//     own checksummed frame, so the fetching peer re-verifies the
//     bytes after the network hop. Read-only — peers can never cause
//     computation here.
//   - POST /v1/peer/handoff: adopt another node's live journal records
//     (its unfinished jobs and campaigns) during its drain, through
//     the normal admission path — journaled before acked, singleflight
//     deduped, backpressure ridden.
//   - GET /v1/cluster: the ring as this node sees it (membership,
//     liveness states, replica factor) for operators and tests.
//   - peerFetch: on any local cache+store miss, ask the key's replicas
//     before recomputing — a warm peer beats a cold run ~13×
//     (BENCH_PR4). Fetched bytes land in the local cache/store, so the
//     ring heals replica counts as it serves.
//   - scatterCell: a campaign feeder routes each cell to its ring
//     owner; a dead or failing owner means the cell is re-owned
//     locally. Either way the merged bytes are identical, so node
//     death during a campaign costs time, never correctness.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/report"
	"repro/internal/store"
)

// peerFetch consults the cluster for key after a local miss: verified
// peer bytes are promoted into the local cache/store (healing the
// replica count) and served as X-Cache: peer. A nil cluster (single
// node) is a permanent miss.
func (s *Server) peerFetch(ctx context.Context, key string) ([]byte, string, bool) {
	if s.cluster == nil {
		return nil, cacheMiss, false
	}
	body, _, ok := s.cluster.FetchResult(ctx, key)
	if !ok {
		return nil, cacheMiss, false
	}
	s.peerHits.Inc()
	s.cache.Put(key, body)
	return body, cachePeer, true
}

// handlePeerResult serves one stored entry in the store's on-disk
// frame (magic|len|SHA-256|body). The durable tier is preferred — its
// frame ships verbatim, already checksummed; a memory-only hit is
// framed on the way out. Absent keys are a plain 404: this endpoint
// never computes, so peers can probe it freely.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var frame []byte
	if s.store != nil {
		if f, ok := s.store.GetFramed(key); ok {
			frame = f
		}
	}
	if frame == nil {
		if body, src := s.cache.Get(key); src != cacheMiss {
			frame = store.EncodeFrame(body)
		}
	}
	if frame == nil {
		httpError(w, http.StatusNotFound, "no stored result for key %q", key)
		return
	}
	s.peerServed.Inc()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Job-Key", key)
	_, _ = w.Write(frame)
}

// handoffRequest is the POST /v1/peer/handoff body: the draining
// node's live journal records, verbatim.
type handoffRequest struct {
	From    string          `json:"from"`
	Records []journalRecord `json:"records"`
}

// handleHandoff adopts a draining peer's unfinished work. Campaign
// records restart their feeders here (stored cells refold as cache
// hits); job accepts re-admit through the normal path (journaled,
// singleflighted, backpressured). Adoption is idempotent — the sender
// keeps its own journal records, so if this node dies too, the
// sender's restart still resumes the work, and double execution only
// reproduces identical bytes.
func (s *Server) handleHandoff(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	var req handoffRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid handoff: %v", err)
		return
	}
	adopted := 0
	for i := range req.Records {
		if s.adoptRecord(&req.Records[i]) {
			adopted++
		}
	}
	s.handoffAdopted.Add(int64(adopted))
	writeJSON(w, http.StatusOK, map[string]any{
		"adopted": adopted,
		"of":      len(req.Records),
	})
}

// adoptRecord folds one handed-off journal record into this node's
// tables. Work whose result is already local (or already in flight)
// counts as adopted — the point is that the bytes will exist, not that
// this node recomputes them.
func (s *Server) adoptRecord(rec *journalRecord) bool {
	switch rec.Op {
	case opCampaign:
		return rec.Camp != nil && s.adoptCampaign(rec)
	case opAccept:
		if rec.Spec == nil || rec.Key == "" {
			return false
		}
		if _, src := s.cache.Get(rec.Key); src != cacheMiss {
			return true // bytes already here
		}
		sp := *rec.Spec
		jb, ok := s.submitCell(&sp, rec.Key)
		if !ok {
			return false
		}
		// Detach: nobody waits on an adopted orphan job; it fills the
		// cache/store for the sender's clients to resolve by key.
		go func() { <-jb.done }()
		return true
	default:
		return false
	}
}

// adoptCampaign mirrors handleCampaignSubmit's admission for a
// handed-off campaign record: short-circuit on a stored final
// aggregate, singleflight against a running campaign with the same
// key, write-ahead the spec, start the feeder.
func (s *Server) adoptCampaign(rec *journalRecord) bool {
	agg, err := campaign.NewAggregate(*rec.Camp)
	if err != nil {
		return false
	}
	key, err := campaignKey(&agg.Spec)
	if err != nil {
		return false
	}
	if _, src := s.cache.Get(key); src != cacheMiss {
		return true // final aggregate already stored
	}
	s.jmu.Lock()
	s.cmu.Lock()
	if s.campInflight[key] != nil {
		s.cmu.Unlock()
		s.jmu.Unlock()
		return true // already running here
	}
	cs := &campaignState{
		id:     fmt.Sprintf("c%06d", s.nextCampID.Add(1)),
		key:    key,
		agg:    agg,
		status: StatusRunning,
		watch:  make(chan struct{}),
	}
	if s.jl != nil {
		spec := agg.Spec
		//reprolint:allow lockheld write-ahead ordering: the adopted campaign must be durable before this node claims it, the fsync is the admission cost
		if err := s.jl.append(journalRecord{Op: opCampaign, ID: cs.id, Key: cs.key, Camp: &spec}); err != nil {
			s.cmu.Unlock()
			s.jmu.Unlock()
			s.journalErrs.Inc()
			return false
		}
	}
	s.campaigns[cs.id] = cs
	s.campInflight[key] = cs
	s.cmu.Unlock()
	s.jmu.Unlock()
	s.campAccepted.Inc()
	s.campActive.Add(1)
	s.campWG.Add(1)
	go s.feedCampaign(cs)
	return true
}

// handleClusterStatus reports the ring as this node sees it.
func (s *Server) handleClusterStatus(w http.ResponseWriter, _ *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	type memberView struct {
		Name  string `json:"name"`
		URL   string `json:"url"`
		State string `json:"state"`
	}
	members := make([]memberView, 0)
	for _, n := range s.cluster.Members() {
		members = append(members, memberView{
			Name:  n.Name,
			URL:   n.URL,
			State: s.cluster.PeerState(n.Name),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"self":     s.cluster.Self(),
		"replicas": s.cluster.ReplicaCount(),
		"members":  members,
	})
}

// scatterCell routes one campaign cell to its ring owner. Returns
// false when the cell is local work (no cluster, self owns it, or the
// owner is dead with no usable replica) — the caller then runs the
// normal local path. Otherwise a goroutine dispatches the cell
// synchronously to the remote owner and merges the returned document;
// any remote failure re-owns the cell locally, so a node dying
// mid-campaign costs exactly a recompute of its unfinished cells.
func (s *Server) scatterCell(cs *campaignState, idx int, sp *Spec, key string, wg *sync.WaitGroup, slots chan struct{}) bool {
	if s.cluster == nil {
		return false
	}
	target := ""
	for _, name := range s.cluster.Replicas(key) {
		if name == s.cluster.Self() {
			return false // we are in the replica set: local compute wins
		}
		if s.cluster.Usable(name) {
			target = name
			break
		}
	}
	if target == "" {
		return false
	}
	remote := *sp
	remote.Wait = true
	wg.Add(1)
	slots <- struct{}{}
	go func() {
		defer wg.Done()
		defer func() { <-slots }()
		body, err := s.cluster.Dispatch(s.baseCtx, target, &remote)
		if err == nil {
			if _, derr := report.DecodeCell(body); derr == nil {
				s.cellsDispatched.Inc()
				s.cache.Put(key, body)
				s.mergeCellBody(cs, idx, body)
				return
			}
		}
		// Re-own: the owner is gone, overloaded past the retry budget,
		// or answered garbage. Compute the cell here — identical bytes.
		s.cellsReowned.Inc()
		if s.draining.Load() {
			return // resumes on restart via the campaign's journal record
		}
		jb, ok := s.submitCell(sp, key)
		if !ok {
			return
		}
		s.mergeCellJob(cs, idx, jb)
	}()
	return true
}

// shipHandoff sends this node's live journal records to their ring
// successors during Shutdown. Records are grouped per successor — the
// first usable replica of each record's key that is not self — and
// shipped on a fresh context (the server's base context may already be
// cancelled on the forced path). Failures are tolerated: the records
// stay in the local journal, so a restart resumes them regardless.
func (s *Server) shipHandoff() {
	if s.cluster == nil || s.jl == nil {
		return
	}
	s.jmu.Lock()
	recs := s.liveRecords()
	s.jmu.Unlock()
	if len(recs) == 0 {
		return
	}
	batches := make(map[string][]journalRecord)
	var order []string
	for _, rec := range recs {
		target := ""
		for _, name := range s.cluster.Replicas(rec.Key) {
			if name != s.cluster.Self() && s.cluster.Usable(name) {
				target = name
				break
			}
		}
		if target == "" {
			// No usable replica: fall back to any usable member.
			for _, n := range s.cluster.Members() {
				if n.Name != s.cluster.Self() && s.cluster.Usable(n.Name) {
					target = n.Name
					break
				}
			}
		}
		if target == "" {
			continue // alone in the world; the journal keeps the work
		}
		if _, ok := batches[target]; !ok {
			order = append(order, target)
		}
		batches[target] = append(batches[target], rec)
	}
	for _, target := range order {
		batch := batches[target]
		payload, err := json.Marshal(handoffRequest{From: s.cluster.Self(), Records: batch})
		if err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if _, err := s.cluster.Handoff(ctx, target, payload); err == nil {
			s.handoffShipped.Add(int64(len(batch)))
		}
		cancel()
	}
}
