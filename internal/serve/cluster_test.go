package serve

// The cluster oracle: the PR 4 crash harness generalized to "a ring
// loses nothing". Three real daemons share one keyspace over real
// HTTP listeners; one of them is killed mid-campaign (listener slammed
// shut, journal dead, jobs cancelled — the in-process SIGKILL
// stand-in) and the invariants are the ISSUE's acceptance criteria:
//
//  1. The campaign completes on the surviving coordinator and its
//     final aggregate is byte-identical to a single-process local
//     fold of the same generator spec.
//  2. No job the killed node acked is lost: its restart replays the
//     journal and drives every acked id to "done".
//  3. The killed node's replacement recovers warm: resubmitting the
//     finished campaign spec to a node with a wiped store answers
//     X-Cache: peer — verified bytes fetched from a replica, no
//     recompute — observable in the repro_cluster_* counters.
//  4. A *graceful* stop ships unfinished journal records to a ring
//     successor (drain handoff), which finishes the work.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// clusterNode is one in-process ring member: a real Server on a real
// TCP listener, plus the handles the harness needs to kill and
// restart it.
type clusterNode struct {
	name string
	dir  string
	addr string
	url  string
	reg  *metrics.Registry
	cl   *cluster.Cluster
	s    *Server
	hs   *http.Server
}

// startClusterNode builds the node's cluster view and daemon and
// serves it on addr (which must already be reserved or free). No
// active prober is started: liveness is fed passively by the peer
// operations, keeping the tests deterministic.
func startClusterNode(t *testing.T, name, dir string, ln net.Listener, members []cluster.Node, opts Options) *clusterNode {
	t.Helper()
	reg := metrics.NewRegistry()
	cl, err := cluster.New(cluster.Config{
		Self:            name,
		Members:         members,
		SuspectAfter:    1,
		DeadAfter:       1,
		ReviveAfter:     1,
		FetchTimeout:    2 * time.Second,
		DispatchTimeout: 30 * time.Second,
		DispatchRetries: 3,
		Registry:        reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.Registry = reg
	opts.Cluster = cl
	opts.DataDir = dir
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.RetryAfter == 0 {
		// Keep dispatch retries against a draining peer snappy.
		opts.RetryAfter = time.Second
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go func() { _ = hs.Serve(ln) }()
	n := &clusterNode{
		name: name,
		dir:  dir,
		addr: ln.Addr().String(),
		url:  "http://" + ln.Addr().String(),
		reg:  reg,
		cl:   cl,
		s:    s,
		hs:   hs,
	}
	t.Cleanup(func() {
		_ = n.hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = n.s.Shutdown(ctx)
	})
	return n
}

// startCluster brings up a ring of the given names, each on its own
// data dir and listener.
func startCluster(t *testing.T, names []string, opts Options) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, len(names))
	members := make([]cluster.Node, len(names))
	for i, name := range names {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		members[i] = cluster.Node{Name: name, URL: "http://" + ln.Addr().String()}
	}
	nodes := make([]*clusterNode, len(names))
	for i, name := range names {
		nodes[i] = startClusterNode(t, name, t.TempDir(), lns[i], members, opts)
	}
	return nodes
}

// kill is the in-process SIGKILL: the journal dies first (no further
// accept is promised), then every connection is slammed shut, then
// running jobs are cancelled. The on-disk journal and store keep
// whatever was written — exactly the state a real SIGKILL leaves.
func (n *clusterNode) kill() {
	n.s.jl.kill(0)
	_ = n.hs.Close()
	n.s.baseCancel()
	// The restart reuses the address: drop any keep-alive connections
	// the test client still holds to the dead incarnation.
	http.DefaultClient.CloseIdleConnections()
}

// restart brings a killed node back on its original address and (by
// default) its original data dir; pass wipe to simulate a replacement
// node with empty disks.
func (n *clusterNode) restart(t *testing.T, wipe bool, members []cluster.Node, opts Options) *clusterNode {
	t.Helper()
	dir := n.dir
	if wipe {
		dir = t.TempDir()
	}
	var ln net.Listener
	var err error
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", n.addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", n.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return startClusterNode(t, n.name, dir, ln, members, opts)
}

func (n *clusterNode) counter(name string) int64 { return n.reg.Counter(name).Value() }

// clusterCampaign is the oracle's workload: 2 faults × 5 intensities ×
// 20 seeds = 200 cells, small enough to fold locally in seconds, large
// enough that a mid-campaign kill leaves real work outstanding.
const clusterCampaign = `{
  "faults": ["babbling-idiot", "stuck-line"],
  "intensities": {"min": 0.25, "max": 1.0, "steps": 5},
  "seeds": {"base": 1, "count": 20},
  "prefix_events": 60,
  "suffix_events": 25
}`

// TestClusterKillOneNodeLosesNothing is the tentpole oracle. One
// campaign is submitted to node A; mid-flight, node B is killed. The
// campaign must still complete with bytes identical to the local fold;
// B's restart must replay its own acked jobs to done; and a wiped
// replacement for B must serve the finished campaign via verified peer
// fetch (X-Cache: peer) without recomputing.
func TestClusterKillOneNodeLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node oracle is not a -short test")
	}
	want := foldCampaign(t, clusterCampaign)
	nodes := startCluster(t, []string{"n1", "n2", "n3"}, Options{})
	a, b := nodes[0], nodes[1]
	members := a.cl.Members()

	// Jobs B acks before dying must survive its restart.
	ackedIDs := make(map[string]string) // id → key
	for i := 0; i < 2; i++ {
		resp, body := post(t, b.url, fmt.Sprintf(`{"kind": "fig6a", "events": %d}`, 210+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("pre-kill job submit: %d %s", resp.StatusCode, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		ackedIDs[v.ID] = v.Key
	}

	resp, body := postCampaign(t, a.url, clusterCampaign)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("campaign submit: %d %s", resp.StatusCode, body)
	}
	var cv campaignView
	if err := json.Unmarshal(body, &cv); err != nil {
		t.Fatal(err)
	}

	// Kill B strictly mid-campaign: after the first cells merged, well
	// before all 200.
	deadline := time.Now().Add(60 * time.Second)
	for a.counter("repro_campaign_cells_merged_total") < 20 {
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reached 20 merged cells (at %d)",
				a.counter("repro_campaign_cells_merged_total"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.kill()

	// The campaign completes on A despite the dead member.
	var final campaignView
	deadline = time.Now().Add(120 * time.Second)
	for {
		resp, body := get(t, a.url+"/v1/campaigns/"+cv.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("campaign poll: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &final); err != nil {
			t.Fatal(err)
		}
		if final.Status != StatusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign stuck at %d/%d cells after the kill", final.Done, final.TotalCells)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.Status != StatusDone {
		t.Fatalf("campaign finished %s: %s", final.Status, final.Error)
	}
	// Byte identity is asserted on the content-addressed artifact,
	// served verbatim from the store (the view re-indents its embedded
	// aggregate, so it is compared semantically elsewhere).
	rr, stored := get(t, a.url+"/v1/results/"+final.Key)
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("final aggregate by key: %d %s", rr.StatusCode, stored)
	}
	if !bytes.Equal(stored, want) {
		t.Fatalf("cluster aggregate differs from the local fold (%d vs %d bytes)",
			len(stored), len(want))
	}
	if got := a.counter("repro_cluster_cells_dispatched_total"); got == 0 {
		t.Fatal("no cell was ever dispatched to a peer — scatter path untested")
	}
	t.Logf("scatter: %d dispatched, %d re-owned after the kill",
		a.counter("repro_cluster_cells_dispatched_total"),
		a.counter("repro_cluster_cells_reowned_total"))

	// B restarts on its own data dir: journal replay drives every job
	// it acked to done, under the original ids.
	b2 := b.restart(t, false, members, Options{})
	waitReady(t, b2.s)
	for id, key := range ackedIDs {
		deadline := time.Now().Add(60 * time.Second)
		for {
			resp, body := get(t, b2.url+"/v1/jobs/"+id)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("job %s after restart: %d %s", id, resp.StatusCode, body)
			}
			var v jobView
			if err := json.Unmarshal(body, &v); err != nil {
				t.Fatal(err)
			}
			if v.Status == StatusDone {
				if v.Key != key {
					t.Fatalf("job %s changed key across restart: %s → %s", id, key, v.Key)
				}
				break
			}
			if v.Status == StatusFailed || v.Status == StatusCancelled {
				t.Fatalf("acked job %s lost to %q after restart", id, v.Status)
			}
			if time.Now().After(deadline) {
				t.Fatalf("acked job %s stuck in %q after restart", id, v.Status)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// A wiped replacement answers the finished campaign from its peers:
	// X-Cache: peer, verified bytes, no local recompute.
	b2.kill()
	b3 := b2.restart(t, true, members, Options{})
	waitReady(t, b3.s)
	req, err := http.NewRequest(http.MethodPost, b3.url+"/v1/campaigns", strings.NewReader(clusterCampaign))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	pbody := readAll(t, hresp)
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("campaign on wiped node: %d %s", hresp.StatusCode, pbody)
	}
	if got := hresp.Header.Get("X-Cache"); got != "peer" {
		t.Fatalf("X-Cache = %q, want \"peer\" (no recompute on the recovery path)", got)
	}
	if !bytes.Equal(pbody, want) {
		t.Fatal("peer-fetched aggregate differs from the local fold")
	}
	if got := b3.counter("repro_cluster_peer_fetch_hits_total"); got < 1 {
		t.Fatalf("peer fetch hits = %d, want ≥ 1", got)
	}
	served := a.counter("repro_cluster_peer_results_served_total") +
		nodes[2].counter("repro_cluster_peer_results_served_total")
	if served < 1 {
		t.Fatalf("no survivor served a peer result (served = %d)", served)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterDrainHandsOffCampaign: a graceful Shutdown mid-campaign
// ships the interrupted campaign's journal record to a ring successor,
// which finishes it — the cluster converges without the stopped node
// ever returning.
func TestClusterDrainHandsOffCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node oracle is not a -short test")
	}
	want := foldCampaign(t, clusterCampaign)
	nodes := startCluster(t, []string{"m1", "m2"}, Options{})
	a, b := nodes[0], nodes[1]

	resp, body := postCampaign(t, a.url, clusterCampaign)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("campaign submit: %d %s", resp.StatusCode, body)
	}
	var cv campaignView
	if err := json.Unmarshal(body, &cv); err != nil {
		t.Fatal(err)
	}

	// Drain A almost immediately: expansion stops, the campaign record
	// stays live, and Shutdown ships it to B.
	deadline := time.Now().Add(60 * time.Second)
	for a.counter("repro_campaign_cells_merged_total") < 5 {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started merging")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	err := a.s.Shutdown(ctx)
	cancel()
	if err != nil {
		t.Fatalf("clean drain failed: %v", err)
	}
	_ = a.hs.Close() // off the network, like a stopped process

	if got := a.counter("repro_cluster_handoff_shipped_total"); got < 1 {
		t.Fatalf("handoff shipped %d records, want ≥ 1", got)
	}
	if got := b.counter("repro_cluster_handoff_adopted_total"); got < 1 {
		t.Fatalf("successor adopted %d records, want ≥ 1", got)
	}

	// B finishes the adopted campaign; the final bytes resolve by
	// content address and equal the local fold.
	deadline = time.Now().Add(120 * time.Second)
	for {
		resp, body := get(t, b.url+"/v1/results/"+cv.Key)
		if resp.StatusCode == http.StatusOK {
			if !bytes.Equal(body, want) {
				t.Fatal("handed-off campaign aggregate differs from the local fold")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("adopted campaign never produced the final aggregate")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterStatusEndpoint: the ring is observable.
func TestClusterStatusEndpoint(t *testing.T) {
	nodes := startCluster(t, []string{"s1", "s2"}, Options{})
	resp, body := get(t, nodes[0].url+"/v1/cluster")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster status: %d %s", resp.StatusCode, body)
	}
	var doc struct {
		Enabled  bool `json:"enabled"`
		Replicas int  `json:"replicas"`
		Members  []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"members"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if !doc.Enabled || len(doc.Members) != 2 || doc.Replicas != 2 {
		t.Fatalf("cluster view: %+v", doc)
	}
	for _, m := range doc.Members {
		if m.State != cluster.StateAlive {
			t.Fatalf("member %s state %q at startup", m.Name, m.State)
		}
	}
	// A single-node daemon reports disabled.
	_, ts := newTestServer(t, Options{Workers: 1, Executor: stubExec})
	resp, body = get(t, ts.URL+"/v1/cluster")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"enabled": false`) {
		t.Fatalf("single-node cluster status: %d %s", resp.StatusCode, body)
	}
}
