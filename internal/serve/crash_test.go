package serve

// The in-process half of the kill–restart recovery harness (the other
// half, scripts/crashtest.sh, SIGKILLs a real daemon). The journal's
// kill hook stands in for SIGKILL deterministically: once armed, every
// journal write past the kill point fails exactly as if the process
// had died between syscalls, so the on-disk crash state is a pure
// function of the (seeded) kill point. The invariants asserted here
// are the ISSUE's acceptance criteria:
//
//  1. No acked job is lost: every submission the daemon answered 202
//     for is pollable after restart, under its original id, and
//     reaches "done".
//  2. No result is ever served with different bytes: recovered
//     results — whether short-circuited from the durable store or
//     recomputed from the replayed spec — are byte-identical to a
//     from-scratch run of the same spec.
//  3. Corruption is never served: a flipped byte in a store entry is
//     quarantined and recomputed.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// stubExec computes a deterministic body from the spec alone — the
// same function of (kind, events, seed) in every process, like the
// real engine, but fast.
func stubExec(_ context.Context, sp *Spec) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"kind": %q, "events": %d, "seed": %d}`+"\n",
		sp.Kind, sp.Events, sp.Seed)), nil
}

// campaignSpecs is the mixed batch the harness submits: distinct
// content addresses across three kinds.
func campaignSpecs() []string {
	var specs []string
	for i := 0; i < 3; i++ {
		specs = append(specs, fmt.Sprintf(`{"kind": "fig6a", "events": %d}`, 500+i))
		specs = append(specs, fmt.Sprintf(`{"kind": "fig6b", "events": %d}`, 600+i))
	}
	specs = append(specs, `{"kind": "overhead", "events": 700}`)
	specs = append(specs, `{"kind": "overhead", "events": 701}`)
	return specs
}

// coldBodies runs every spec on a fresh, memory-only daemon: the
// from-scratch truth recovered results must match byte for byte.
func coldBodies(t *testing.T, specs []string) map[string][]byte {
	t.Helper()
	_, ts := newTestServer(t, Options{Workers: 1, Executor: stubExec})
	out := make(map[string][]byte)
	for _, spec := range specs {
		waiting := strings.TrimSuffix(spec, "}") + `, "wait": true}`
		resp, body := post(t, ts.URL, waiting)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cold run %s: %d %s", spec, resp.StatusCode, body)
		}
		out[spec] = body
	}
	return out
}

func waitReady(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !s.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashAtSeededKillPointsLosesNoAckedJob sweeps seeded kill
// points over a mixed campaign. For each: a durable daemon accepts
// jobs until the journal dies mid-campaign; a second daemon on the
// same data dir must replay every acked job to "done" with bytes
// identical to a from-scratch run, and a fresh submission must not
// collide with a replayed job id.
func TestCrashAtSeededKillPointsLosesNoAckedJob(t *testing.T) {
	specs := campaignSpecs()
	want := coldBodies(t, specs)

	for _, seed := range []int64{1, 2, 2014} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Kill somewhere strictly inside the campaign's journal
			// traffic (2·len(specs) records when nothing is lost).
			kill := 1 + rand.New(rand.NewSource(seed)).Int63n(int64(2*len(specs)-1))
			dir := t.TempDir()

			s1, ts1 := newTestServer(t, Options{
				Workers: 1, DataDir: dir, Executor: stubExec,
				Registry: metrics.NewRegistry(),
			})
			s1.jl.kill(kill)

			// Submit the campaign; only 2xx answers count as acked.
			acked := make(map[string]string) // spec → job id
			for _, spec := range specs {
				resp, body := post(t, ts1.URL, spec)
				switch resp.StatusCode {
				case http.StatusAccepted:
					var v jobView
					if err := json.Unmarshal(body, &v); err != nil {
						t.Fatal(err)
					}
					acked[spec] = v.ID
				case http.StatusServiceUnavailable:
					// The journal died before this accept: not acked,
					// the daemon refused rather than promised.
				default:
					t.Fatalf("submit %s: %d %s", spec, resp.StatusCode, body)
				}
			}
			if len(acked) == 0 {
				t.Fatalf("kill point %d acked nothing; harness needs a mid-campaign kill", kill)
			}
			// Let the dying daemon finish what it can (terminal records
			// past the kill point are lost — that is the point), then
			// abandon it. Shutdown's compaction fails on the dead
			// journal, preserving the crash state, like a real SIGKILL.
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			_ = s1.Shutdown(ctx)
			cancel()

			reg2 := metrics.NewRegistry()
			s2, err := New(Options{
				Workers: 1, DataDir: dir, Executor: stubExec, Registry: reg2,
			})
			if err != nil {
				t.Fatal(err)
			}
			ts2 := httptest.NewServer(s2.Handler())
			defer func() {
				ts2.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = s2.Shutdown(ctx)
			}()
			waitReady(t, s2)

			if got := reg2.Counter("repro_journal_replayed_jobs_total").Value(); got != int64(len(acked)) {
				t.Fatalf("replayed %d jobs, want %d (the acked set)", got, len(acked))
			}
			// Invariant 1 + 2: every acked id reaches done under its
			// original id, with from-scratch bytes.
			for spec, id := range acked {
				v := waitForStatus(t, ts2.URL, id, StatusDone)
				var recovered, cold bytes.Buffer
				if err := json.Compact(&recovered, v.Result); err != nil {
					t.Fatalf("job %s result: %v", id, err)
				}
				if err := json.Compact(&cold, want[spec]); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(recovered.Bytes(), cold.Bytes()) {
					t.Fatalf("job %s recovered bytes differ from cold run:\n%s\n%s",
						id, recovered.Bytes(), cold.Bytes())
				}
			}
			// Re-submitting a recovered spec is answered from cache
			// tiers, never recomputed into different bytes.
			for spec := range acked {
				waiting := strings.TrimSuffix(spec, "}") + `, "wait": true}`
				resp, body := post(t, ts2.URL, waiting)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("resubmit %s: %d %s", spec, resp.StatusCode, body)
				}
				if src := resp.Header.Get("X-Cache"); src != "hit" && src != "store" {
					t.Fatalf("resubmit %s served X-Cache %q, want a cache tier", spec, src)
				}
				if !bytes.Equal(body, want[spec]) {
					t.Fatalf("resubmit %s bytes differ from cold run", spec)
				}
			}
			// Fresh ids continue after the replayed ones: no collision.
			resp, body := post(t, ts2.URL, `{"kind": "fig6c", "events": 999}`)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("fresh submit: %d %s", resp.StatusCode, body)
			}
			var fresh jobView
			if err := json.Unmarshal(body, &fresh); err != nil {
				t.Fatal(err)
			}
			for _, id := range acked {
				if fresh.ID == id {
					t.Fatalf("fresh job reused replayed id %s", id)
				}
			}
		})
	}
}

// TestCrashMidRunReplaysQueuedAndRunning kills the journal while jobs
// are demonstrably queued and running (gated executor), then restarts
// with the store wiped — the worst case: nothing durable but the
// journal — and requires full recomputation to from-scratch bytes.
func TestCrashMidRunReplaysQueuedAndRunning(t *testing.T) {
	specs := campaignSpecs()[:4]
	want := coldBodies(t, specs)
	dir := t.TempDir()

	release := make(chan struct{})
	gated := func(ctx context.Context, sp *Spec) ([]byte, error) {
		select {
		case <-release:
			return stubExec(ctx, sp)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s1, ts1 := newTestServer(t, Options{
		Workers: 1, QueueSize: 8, DataDir: dir, Executor: gated,
		Registry: metrics.NewRegistry(),
	})
	acked := make(map[string]string)
	for _, spec := range specs {
		resp, body := post(t, ts1.URL, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %d %s", spec, resp.StatusCode, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		acked[spec] = v.ID
	}
	// One job is running (blocked in the executor), three are queued.
	// The process dies now: journal stops cold, in-flight work is torn
	// down without terminal records reaching disk.
	s1.jl.kill(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_ = s1.Shutdown(ctx) // forced: cancels the gated jobs
	cancel()
	close(release)

	// Wipe the store: simulates a crash that beat every store write
	// (e.g. no fsync and power loss). The journal alone must recover
	// the campaign.
	if err := os.RemoveAll(filepath.Join(dir, "store")); err != nil {
		t.Fatal(err)
	}

	reg2 := metrics.NewRegistry()
	s2, err := New(Options{Workers: 2, DataDir: dir, Executor: stubExec, Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	waitReady(t, s2)

	for spec, id := range acked {
		v := waitForStatus(t, ts2.URL, id, StatusDone)
		var recovered, cold bytes.Buffer
		if err := json.Compact(&recovered, v.Result); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&cold, want[spec]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(recovered.Bytes(), cold.Bytes()) {
			t.Fatalf("job %s recomputed bytes differ from cold run", id)
		}
	}
	if got := reg2.Counter("repro_journal_replayed_jobs_total").Value(); got != 4 {
		t.Fatalf("replayed = %d, want 4", got)
	}
}

// TestRecoveredResultsServedFromStoreWithoutRecompute: when the store
// survived the crash, replayed jobs must short-circuit on it — the
// executor must not run again.
func TestRecoveredResultsServedFromStoreWithoutRecompute(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kind": "fig6a", "events": 512, "wait": true}`

	s1, ts1 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: metrics.NewRegistry(),
	})
	r1, b1 := post(t, ts1.URL, spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("seed run: %d %s", r1.StatusCode, b1)
	}
	// Crash after the result reached the store but before anything
	// else: drop the terminal record by killing the journal now and
	// rewriting it to just the accept (the store write outlived the
	// terminal append — the allowed ordering).
	s1.jl.kill(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()
	// Reconstruct the crash journal: accept only, no terminal record.
	var sp Spec
	if err := json.Unmarshal([]byte(spec), &sp); err != nil {
		t.Fatal(err)
	}
	if err := sp.normalize(); err != nil {
		t.Fatal(err)
	}
	key, err := sp.key()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "journal.wal")
	jl, _, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.compact([]journalRecord{{Op: opAccept, ID: "j00000001", Key: key, Spec: &sp}}); err != nil {
		t.Fatal(err)
	}
	jl.close()

	booms := make(chan struct{}, 8)
	reg2 := metrics.NewRegistry()
	s2, err := New(Options{
		Workers: 1, DataDir: dir, Registry: reg2,
		Executor: func(ctx context.Context, sp *Spec) ([]byte, error) {
			booms <- struct{}{}
			return stubExec(ctx, sp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	waitReady(t, s2)
	v := waitForStatus(t, ts2.URL, "j00000001", StatusDone)
	var recovered, first bytes.Buffer
	if err := json.Compact(&recovered, v.Result); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&first, b1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered.Bytes(), first.Bytes()) {
		t.Fatal("store-recovered bytes differ from the original response")
	}
	select {
	case <-booms:
		t.Fatal("executor ran for a job whose result was already durable")
	default:
	}
	if got := reg2.Counter("repro_server_cache_store_hits_total").Value(); got == 0 {
		t.Fatal("recovery did not touch the durable store")
	}
}

// TestCorruptStoreEntryQuarantinedAndRecomputed flips one byte in a
// durable result and restarts: the daemon must detect it by checksum,
// quarantine it, recompute identical bytes, and count the corruption —
// never serve the bad entry.
func TestCorruptStoreEntryQuarantinedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kind": "fig6b", "events": 640, "wait": true}`

	s1, ts1 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: metrics.NewRegistry(),
	})
	r1, b1 := post(t, ts1.URL, spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("seed run: %d %s", r1.StatusCode, b1)
	}
	key := r1.Header.Get("X-Job-Key")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()

	entry := filepath.Join(dir, "store", "results", key[:2], key)
	raw, err := os.ReadFile(entry)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(entry, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := metrics.NewRegistry()
	_, ts2 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: reg2,
	})
	r2, b2 := post(t, ts2.URL, spec)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("post-corruption run: %d %s", r2.StatusCode, b2)
	}
	if src := r2.Header.Get("X-Cache"); src != "miss" {
		t.Fatalf("corrupt entry served as X-Cache %q, want a recomputing miss", src)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("recomputed bytes differ from the original")
	}
	if got := reg2.Counter("repro_store_corruption_total").Value(); got != 1 {
		t.Fatalf("corruption_total = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "store", "quarantine", key+".corrupt")); err != nil {
		t.Fatalf("corrupt entry not quarantined: %v", err)
	}
	// The recomputed result was re-stored and verifies again.
	r3, b3 := post(t, ts2.URL, spec)
	if src := r3.Header.Get("X-Cache"); src != "hit" || !bytes.Equal(b3, b1) {
		t.Fatalf("re-stored entry: X-Cache %q", src)
	}
}

// TestDrainedShutdownCompactsJournal: a clean drain leaves an empty
// journal — the next start replays nothing and is ready immediately —
// while results still come from the durable store.
func TestDrainedShutdownCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kind": "fig6a", "events": 321, "wait": true}`

	s1, ts1 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: metrics.NewRegistry(),
	})
	if r, b := post(t, ts1.URL, spec); r.StatusCode != http.StatusOK {
		t.Fatalf("seed run: %d %s", r.StatusCode, b)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("clean drain: %v", err)
	}
	cancel()
	if info, err := os.Stat(filepath.Join(dir, "journal.wal")); err != nil || info.Size() != 0 {
		t.Fatalf("journal after clean drain: size %v, err %v; want 0 (compacted)", info.Size(), err)
	}

	reg2 := metrics.NewRegistry()
	s2, ts2 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: reg2,
	})
	if !s2.Ready() {
		t.Fatal("compacted restart not immediately ready")
	}
	if got := reg2.Counter("repro_journal_replayed_jobs_total").Value(); got != 0 {
		t.Fatalf("replayed = %d after a clean drain, want 0", got)
	}
	r, _ := post(t, ts2.URL, spec)
	if src := r.Header.Get("X-Cache"); src != "store" {
		t.Fatalf("warm result X-Cache = %q, want store", src)
	}
}

// TestTornJournalTailDroppedNotFatal: a half-written final record —
// the only tear a sequential append can leave — is dropped and
// counted; the intact prefix replays normally.
func TestTornJournalTailDroppedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: metrics.NewRegistry(),
	})
	specA := `{"kind": "fig6a", "events": 801, "wait": true}`
	if r, b := post(t, ts1.URL, specA); r.StatusCode != http.StatusOK {
		t.Fatalf("job A: %d %s", r.StatusCode, b)
	}
	// Crash without compaction, then tear the tail by hand.
	s1.jl.kill(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()
	path := filepath.Join(dir, "journal.wal")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := metrics.NewRegistry()
	s2, ts2 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: reg2,
	})
	waitReady(t, s2)
	if got := reg2.Counter("repro_journal_torn_tail_total").Value(); got != 1 {
		t.Fatalf("torn_tail_total = %d, want 1", got)
	}
	// The accept survived (record 1); the torn terminal record means
	// the job replays and completes again.
	v := waitForStatus(t, ts2.URL, "j00000001", StatusDone)
	if len(v.Result) == 0 {
		t.Fatal("replayed job has no result")
	}
}

// TestDurableMetricsExposition: after a crash–restart recovery the
// /metrics exposition carries the durability series — journal replay,
// torn tail, append errors, store tiers — with exact values, so
// dashboards can distinguish "recovered cleanly" from "lost records".
func TestDurableMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	spec := `{"kind": "fig6a", "events": 128, "wait": true}`

	s1, ts1 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: metrics.NewRegistry(),
	})
	if r, b := post(t, ts1.URL, spec); r.StatusCode != http.StatusOK {
		t.Fatalf("seed run: %d %s", r.StatusCode, b)
	}
	// Crash after the store write but before the terminal record lands:
	// kill the journal, then rewind it to just the accept.
	s1.jl.kill(0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	_ = s1.Shutdown(ctx)
	cancel()
	raw, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	recs, _, _ := decodeJournal(raw)
	if len(recs) < 1 || recs[0].Op != opAccept {
		t.Fatalf("journal = %+v, want a leading accept", recs)
	}
	jl, _, _, err := openJournal(filepath.Join(dir, "journal.wal"), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.compact(recs[:1]); err != nil {
		t.Fatal(err)
	}
	jl.close()

	_, ts2 := newTestServer(t, Options{
		Workers: 1, DataDir: dir, Executor: stubExec, Registry: metrics.NewRegistry(),
	})
	waitForStatus(t, ts2.URL, recs[0].ID, StatusDone)
	resp, body := get(t, ts2.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"repro_journal_append_errors_total 0",
		"repro_journal_replayed_jobs_total 1",
		"repro_journal_torn_tail_total 0",
		"repro_server_cache_store_hits_total 1",
		"repro_store_corruption_total 0",
		"repro_store_entries 1",
		"repro_store_evictions_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if strings.Contains(text, "repro_store_bytes_on_disk 0\n") {
		t.Error("store bytes gauge reads 0 with a durable entry on disk")
	}
}

// TestReadyzGatesDuringReplay: while a replayed backlog larger than
// the queue is still re-enqueueing, /readyz is 503 "replaying" but
// /healthz stays 200 — a restart never looks like a crash.
func TestReadyzGatesDuringReplay(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	gatedOnce := func(ctx context.Context, sp *Spec) ([]byte, error) {
		select {
		case <-release:
			return stubExec(ctx, sp)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	s1, ts1 := newTestServer(t, Options{
		Workers: 1, QueueSize: 8, DataDir: dir, Executor: gatedOnce,
		Registry: metrics.NewRegistry(),
	})
	for i := 0; i < 4; i++ {
		if r, b := post(t, ts1.URL, fmt.Sprintf(`{"kind": "fig6a", "events": %d}`, 900+i)); r.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %s", i, r.StatusCode, b)
		}
	}
	s1.jl.kill(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	_ = s1.Shutdown(ctx)
	cancel()

	// Restart with a single queue slot and a still-gated executor: the
	// replay goroutine cannot finish re-enqueueing 4 jobs, so the
	// daemon is observably replaying.
	s2, err := New(Options{
		Workers: 1, QueueSize: 1, DataDir: dir, Executor: gatedOnce,
		Registry: metrics.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()

	if rr, rb := get(t, ts2.URL+"/readyz"); rr.StatusCode != http.StatusServiceUnavailable ||
		!strings.Contains(string(rb), `"replaying"`) {
		t.Fatalf("readyz during replay: %d %s, want 503 replaying", rr.StatusCode, rb)
	}
	if hr, hb := get(t, ts2.URL+"/healthz"); hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz during replay: %d %s, want 200", hr.StatusCode, hb)
	}
	close(release)
	waitReady(t, s2)
	if rr, _ := get(t, ts2.URL+"/readyz"); rr.StatusCode != http.StatusOK {
		t.Fatalf("readyz after replay: %d, want 200", rr.StatusCode)
	}
}
