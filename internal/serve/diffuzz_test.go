package serve

// Differential-fuzz campaign tests: the "diffuzz" cell kind flowing
// through the same queue/store/aggregation machinery as the chaos
// sweep, with the same acceptance invariant — the streamed aggregate
// must be byte-identical to the sequential in-process fold.

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/metrics"
)

// smallDiffuzz is a 6-cell diffuzz sweep: 2 scenario classes × 3 seeds.
const smallDiffuzz = `{
  "kind": "diffuzz",
  "classes": ["sporadic", "guest"],
  "seeds": {"base": 1, "count": 3},
  "events": 80
}`

// TestDiffuzzCampaignStreamConvergesToLocalFold submits a diffuzz
// campaign over HTTP, follows the stream to its terminal chunk, and
// requires the final aggregate to match the in-process fold byte for
// byte — the cross-tier half of the bound-tightness acceptance check
// (scripts/diffuzzsmoke.sh runs the full-size version).
func TestDiffuzzCampaignStreamConvergesToLocalFold(t *testing.T) {
	want := foldCampaign(t, smallDiffuzz)
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Options{Workers: 2, Registry: reg})

	resp, body := postCampaign(t, ts.URL, smallDiffuzz)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var accepted campaignView
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.TotalCells != 6 || accepted.Status != StatusRunning {
		t.Fatalf("unexpected acceptance view: %+v", accepted)
	}

	sresp, err := http.Get(ts.URL + "/v1/campaigns/" + accepted.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var last campaignView
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream chunk: %v: %s", err, sc.Bytes())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.Status != StatusDone || last.Done != 6 || last.Errors != 0 {
		t.Fatalf("stream ended badly: %+v", last)
	}
	if !sameJSON(t, last.Aggregate, want) {
		t.Fatalf("streamed diffuzz aggregate diverges from local fold:\n%s\n%s", last.Aggregate, want)
	}

	// The analytic bounds hold over every generated scenario, and the
	// campaign measured a real tightness gap.
	var view struct {
		Violations int     `json:"violations"`
		GapCount   int64   `json:"gap_count"`
		MinGapUs   float64 `json:"min_gap_us"`
	}
	if err := json.Unmarshal(last.Aggregate, &view); err != nil {
		t.Fatal(err)
	}
	if view.Violations != 0 {
		t.Fatalf("diffuzz campaign found %d bound violations", view.Violations)
	}
	if view.GapCount == 0 || view.MinGapUs <= 0 {
		t.Fatalf("diffuzz campaign folded no tightness gap: %+v", view)
	}

	if got := reg.Counter("repro_diffuzz_cells_merged_total").Value(); got != 6 {
		t.Fatalf("repro_diffuzz_cells_merged_total = %d, want 6", got)
	}
	if got := reg.Counter("repro_diffuzz_violations_total").Value(); got != 0 {
		t.Fatalf("repro_diffuzz_violations_total = %d, want 0", got)
	}
}

// TestDiffuzzPanicIsolation extends the panic-isolation contract to the
// diffuzz cell kind: a diffuzz cell that panics the engine fails that
// job alone — the worker survives and the next diffuzz cell runs.
func TestDiffuzzPanicIsolation(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Options{Workers: 1, Registry: reg})
	s.customExec = true // cell jobs must reach the stubbed executor
	s.run = func(ctx context.Context, sp *Spec) ([]byte, error) {
		if sp.Kind == "cell" && sp.Cell != nil && sp.Cell.Kind == campaign.KindDiffuzz && sp.Cell.Seed == 7 {
			panic("poisoned diffuzz scenario")
		}
		return []byte("{}\n"), nil
	}

	resp, body := post(t, ts.URL, `{"kind": "cell", "cell": {"kind": "diffuzz", "class": "sporadic", "seed": 7, "events": 80}, "wait": true}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking diffuzz cell: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "poisoned diffuzz scenario") {
		t.Fatalf("500 body does not carry the panic message: %s", body)
	}
	if got := reg.Counter("repro_server_jobs_panicked_total").Value(); got != 1 {
		t.Fatalf("panicked counter = %d, want 1", got)
	}

	resp, body = post(t, ts.URL, `{"kind": "cell", "cell": {"kind": "diffuzz", "class": "sporadic", "seed": 8, "events": 80}, "wait": true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diffuzz cell after panic: %d %s", resp.StatusCode, body)
	}
}
