package serve

// The write-ahead job journal. Every job the daemon *acks* — replies
// 202 or starts blocking on — is first appended here, and every
// terminal transition (done/failed/cancelled) follows it, so the
// journal plus the durable result store reconstruct the daemon's job
// table after a crash:
//
//	accept, no terminal record  → the job was queued or running when
//	                              the process died: re-enqueue it.
//	accept + terminal record    → finished: status (and, for "done",
//	                              the body via the content-addressed
//	                              store) is served from the record.
//
// Replay is idempotent by construction: job ids are stable across the
// restart, re-enqueued work is content-addressed (recomputation yields
// byte-identical results, and a result that reached the store before
// the crash short-circuits the recompute entirely), and the in-flight
// singleflight index is rebuilt from the replayed jobs.
//
// On-disk format: a sequence of framed records, each
//
//	4-byte big-endian payload length
//	4-byte big-endian CRC32 (IEEE) of the payload
//	payload (canonical JSON of journalRecord)
//
// A crash can tear at most the final record (appends are sequential),
// so the reader accepts the longest valid prefix and reports the torn
// tail, which the opener truncates away — a half-written record is
// dropped, never fatal, and never a parse error for later appends.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/campaign"
)

// Journal record operations. opAccept carries the full spec (the
// journal must be able to re-create the job from nothing); terminal
// records carry only id/op/err — the result body lives in the store,
// keyed by the job's content address.
const (
	opAccept    = "accept"
	opDone      = "done"
	opFailed    = "failed"
	opCancelled = "cancelled"
	// opCampaign accepts a campaign: the record carries the generator
	// spec, so replay re-creates the campaign (same id, same key) and
	// resumes it by refolding stored cell results. Terminal campaign
	// transitions reuse opDone/opFailed with the campaign's "c…" id.
	opCampaign = "campaign"
)

type journalRecord struct {
	Op   string         `json:"op"`
	ID   string         `json:"id"`
	Key  string         `json:"key,omitempty"`
	Spec *Spec          `json:"spec,omitempty"` // accept records only
	Camp *campaign.Spec `json:"camp,omitempty"` // campaign records only
	Err  string         `json:"err,omitempty"`  // failed/cancelled records
}

// errJournalDead is returned by appends after the journal was killed
// (crash simulation) or closed.
var errJournalDead = errors.New("serve: journal is not accepting writes")

const journalFrameHeader = 8 // length + crc32

// journal is an append-only record log. Safe for concurrent use.
type journal struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	fsync bool
	count int64 // records appended by this process
	bytes int64 // current on-disk size (replayed prefix + appends − compactions)

	// killAfter simulates SIGKILL at a record boundary for the crash
	// harness: once count reaches it, every subsequent write — appends
	// and compaction alike — fails as if the process had died. < 0
	// disables the hook.
	killAfter int64
	closed    bool
}

// openJournal opens (creating if needed) the journal at path, replays
// its records and truncates any torn tail. It returns the journal
// ready for appends, the valid records in append order, and whether a
// torn tail was dropped.
func openJournal(path string, fsync bool) (*journal, []journalRecord, bool, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, nil, false, fmt.Errorf("serve: journal: %w", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, false, fmt.Errorf("serve: journal: %w", err)
	}
	recs, validEnd, torn := decodeJournal(raw)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, false, fmt.Errorf("serve: journal: %w", err)
	}
	if torn {
		if err := f.Truncate(validEnd); err != nil {
			f.Close()
			return nil, nil, false, fmt.Errorf("serve: journal: dropping torn tail: %w", err)
		}
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, false, fmt.Errorf("serve: journal: %w", err)
	}
	return &journal{f: f, path: path, fsync: fsync, bytes: validEnd, killAfter: -1}, recs, torn, nil
}

// decodeJournal reads the longest valid record prefix of raw. Any
// trailing bytes that do not frame a complete, checksum-clean record —
// a torn final write, or garbage after one — are reported as a torn
// tail; everything before them is intact (CRC-verified).
func decodeJournal(raw []byte) (recs []journalRecord, validEnd int64, torn bool) {
	off := 0
	for {
		if off == len(raw) {
			return recs, int64(off), false
		}
		if len(raw)-off < journalFrameHeader {
			return recs, int64(off), true
		}
		n := int(binary.BigEndian.Uint32(raw[off:]))
		sum := binary.BigEndian.Uint32(raw[off+4:])
		if len(raw)-off-journalFrameHeader < n {
			return recs, int64(off), true
		}
		payload := raw[off+journalFrameHeader : off+journalFrameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, int64(off), true
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, int64(off), true
		}
		recs = append(recs, rec)
		off += journalFrameHeader + n
	}
}

func encodeRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, journalFrameHeader+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[journalFrameHeader:], payload)
	return buf, nil
}

// append writes one record durably (per the fsync policy) before
// returning. The write-ahead contract lives here: submit acks a job
// only after its accept record returned from append.
func (j *journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || (j.killAfter >= 0 && j.count >= j.killAfter) {
		return errJournalDead
	}
	buf, err := encodeRecord(rec)
	if err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("serve: journal: %w", err)
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("serve: journal: %w", err)
		}
	}
	j.count++
	j.bytes += int64(len(buf))
	return nil
}

// size returns the journal's current on-disk size — the live-compaction
// trigger reads it after every job retirement.
func (j *journal) size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bytes
}

// compact atomically replaces the journal with only the live records —
// after a clean drain that is none at all, so the next start replays
// nothing. The rewrite is tmp+rename, like a store Put: a crash during
// compaction leaves either the old journal or the new one.
func (j *journal) compact(live []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || (j.killAfter >= 0 && j.count >= j.killAfter) {
		return errJournalDead
	}
	tmp, err := os.CreateTemp(filepath.Dir(j.path), "journal-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	var written int64
	for _, rec := range live {
		buf, err := encodeRecord(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("serve: journal: compact: %w", err)
		}
		if _, err := tmp.Write(buf); err != nil {
			tmp.Close()
			return fmt.Errorf("serve: journal: compact: %w", err)
		}
		written += int64(len(buf))
	}
	if j.fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("serve: journal: compact: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	// Swap the append handle to the new file.
	f, err := os.OpenFile(j.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal: compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.bytes = written
	return nil
}

// close stops the journal; further appends fail.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// kill arms the crash hook: after n more records the journal dies
// mid-flight, exactly as a SIGKILL between syscalls would leave it.
func (j *journal) kill(afterRecords int64) {
	j.mu.Lock()
	j.killAfter = j.count + afterRecords
	j.mu.Unlock()
}
