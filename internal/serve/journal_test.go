package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []journalRecord {
	return []journalRecord{
		{Op: opAccept, ID: "j00000001", Key: "k1", Spec: &Spec{Kind: "fig6a", Events: 100, Seed: 1}},
		{Op: opAccept, ID: "j00000002", Key: "k2", Spec: &Spec{Kind: "fig6b", Events: 200, Seed: 2}},
		{Op: opDone, ID: "j00000001"},
		{Op: opFailed, ID: "j00000002", Err: "boom"},
	}
}

// TestJournalRoundTrip: records appended by one journal are replayed
// verbatim by the next open of the same path.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, recs, torn, err := openJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || torn {
		t.Fatalf("fresh journal: %d records, torn %v", len(recs), torn)
	}
	want := testRecords()
	for _, rec := range want {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	_, got, torn, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean journal reported a torn tail")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed records differ:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestJournalTornTail: for every truncation point inside the final
// record, the reader recovers the full prefix and reports (exactly) a
// torn tail — a half-written record is dropped, never fatal.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, _, _, err := openJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for _, rec := range want {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if all, _, _ := decodeJournal(full); len(all) != 4 {
		t.Fatalf("sanity: full journal has %d records, want 4", len(all))
	}
	// Walk three frames to find where the final record begins.
	lastStart := int64(0)
	for i := 0; i < 3; i++ {
		n := int64(full[lastStart])<<24 | int64(full[lastStart+1])<<16 |
			int64(full[lastStart+2])<<8 | int64(full[lastStart+3])
		lastStart += journalFrameHeader + n
	}

	for cut := lastStart + 1; cut < int64(len(full)); cut++ {
		tornPath := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(tornPath, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jt, recs, torn, err := openJournal(tornPath, false)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !torn {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
		if !reflect.DeepEqual(recs, want[:3]) {
			t.Fatalf("cut %d: prefix not recovered: %+v", cut, recs)
		}
		// The torn bytes were truncated away: appending works and the
		// next open sees prefix + new record, no tear.
		if err := jt.append(journalRecord{Op: opCancelled, ID: "j00000002"}); err != nil {
			t.Fatalf("cut %d: append after tear: %v", cut, err)
		}
		jt.close()
		_, recs2, torn2, err := openJournal(tornPath, false)
		if err != nil || torn2 {
			t.Fatalf("cut %d: reopen after repair: torn %v err %v", cut, torn2, err)
		}
		if len(recs2) != 4 || recs2[3].Op != opCancelled {
			t.Fatalf("cut %d: repaired journal = %+v", cut, recs2)
		}
		os.Remove(tornPath)
	}
}

// TestJournalCorruptTailDropped: a flipped byte in the final record's
// payload fails the CRC and the record is dropped like a torn one.
func TestJournalCorruptTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := openJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, torn, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(recs) != 3 {
		t.Fatalf("corrupt tail: torn %v, %d records; want torn, 3", torn, len(recs))
	}
}

// TestJournalCompact: compaction rewrites the journal to the live set
// (none, after a clean drain) and appends still work afterwards.
func TestJournalCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range testRecords() {
		if err := j.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.compact(nil); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != 0 {
		t.Fatalf("compacted journal size = %v, %v; want 0", info.Size(), err)
	}
	if err := j.append(journalRecord{Op: opAccept, ID: "j00000009", Key: "k9", Spec: &Spec{Kind: "fig6a"}}); err != nil {
		t.Fatal(err)
	}
	j.close()
	_, recs, torn, err := openJournal(path, false)
	if err != nil || torn {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "j00000009" {
		t.Fatalf("post-compact journal = %+v", recs)
	}
}

// TestJournalKillHook: after the armed record count, appends and
// compaction fail exactly as if the process had died — the harness's
// deterministic SIGKILL stand-in.
func TestJournalKillHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.wal")
	j, _, _, err := openJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.kill(2)
	recs := testRecords()
	if err := j.append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := j.append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := j.append(recs[2]); err != errJournalDead {
		t.Fatalf("append past kill point = %v, want errJournalDead", err)
	}
	if err := j.compact(nil); err != errJournalDead {
		t.Fatalf("compact past kill point = %v, want errJournalDead", err)
	}
	_, got, torn, err := openJournal(path, false)
	if err != nil || torn {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("journal after simulated kill holds %d records, want 2", len(got))
	}
}
