package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/metrics"
)

// newTestServer builds a Server with a private metrics registry and
// tears it down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func post(t *testing.T, url string, spec string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestCachedAndFreshByteIdentical is the acceptance test: two
// identical POSTs return byte-identical bodies, the second served from
// the cache (hit counter increments, X-Cache: hit).
func TestCachedAndFreshByteIdentical(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Options{Workers: 2, Registry: reg})
	spec := `{"kind": "fig6a", "events": 200, "wait": true}`

	r1, b1 := post(t, ts.URL, spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first POST X-Cache = %q, want miss", got)
	}
	hitsBefore := reg.Counter("repro_server_cache_hits_total").Value()

	r2, b2 := post(t, ts.URL, spec)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached body differs from fresh body")
	}
	if got := reg.Counter("repro_server_cache_hits_total").Value(); got != hitsBefore+1 {
		t.Fatalf("cache hits = %d, want %d", got, hitsBefore+1)
	}
	if r1.Header.Get("X-Job-Key") != r2.Header.Get("X-Job-Key") {
		t.Fatal("identical specs produced different job keys")
	}
	// A semantically identical spec with defaults spelled out hits the
	// same entry: normalization canonicalises before hashing.
	r3, b3 := post(t, ts.URL, `{"kind": "fig6a", "events": 200, "seed": 2014, "wait": true}`)
	if r3.Header.Get("X-Cache") != "hit" || !bytes.Equal(b1, b3) {
		t.Fatal("spelled-out defaults missed the cache")
	}
}

// blockingServer swaps the executor for one that parks jobs until
// released, reporting each start. Admission, queueing and shutdown
// logic are exercised without real simulations.
func blockingServer(t *testing.T, opts Options) (*Server, *httptest.Server, chan string, chan struct{}) {
	s, ts := newTestServer(t, opts)
	started := make(chan string, 16)
	release := make(chan struct{})
	s.run = func(ctx context.Context, sp *Spec) ([]byte, error) {
		started <- sp.Kind
		select {
		case <-release:
			return []byte(`{"kind": "` + sp.Kind + `"}` + "\n"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return s, ts, started, release
}

// TestQueueFullBackpressure fills the single-worker, single-slot queue
// and asserts the next submission is refused with 429 + Retry-After.
func TestQueueFullBackpressure(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts, started, release := blockingServer(t, Options{
		Workers: 1, QueueSize: 1, RetryAfter: 3 * time.Second, Registry: reg,
	})

	// Job 1 occupies the worker (wait for it to actually start so the
	// queue slot is observably free), job 2 fills the queue.
	r1, b1 := post(t, ts.URL, `{"kind": "fig6a", "events": 101}`)
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d %s", r1.StatusCode, b1)
	}
	<-started
	r2, _ := post(t, ts.URL, `{"kind": "fig6a", "events": 102}`)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d", r2.StatusCode)
	}
	if got := reg.Gauge("repro_server_queue_depth").Value(); got != 1 {
		t.Fatalf("queue depth = %d, want 1", got)
	}

	r3, b3 := post(t, ts.URL, `{"kind": "fig6a", "events": 103}`)
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d %s, want 429", r3.StatusCode, b3)
	}
	if got := r3.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if got := reg.Counter("repro_server_jobs_rejected_total").Value(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	close(release)
	var v jobView
	if err := json.Unmarshal(b1, &v); err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, ts.URL, v.ID, StatusDone)
}

func waitForStatus(t *testing.T, base, id, want string) jobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body := get(t, base+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: %d %s", id, resp.StatusCode, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, v.Status, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobTimeout: a job outliving its deadline is cancelled and a
// blocking POST reports 504.
func TestJobTimeout(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts, started, _ := blockingServer(t, Options{
		Workers: 1, JobTimeout: 30 * time.Millisecond, Registry: reg,
	})
	_ = s
	go func() { <-started }()

	resp, body := post(t, ts.URL, `{"kind": "fig6a", "events": 104, "wait": true}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("POST: %d %s, want 504", resp.StatusCode, body)
	}
	if got := reg.Counter("repro_server_jobs_cancelled_total").Value(); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
}

// TestAsyncJobLifecycle: 202 + Location, poll to done, result inline.
func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, body := post(t, ts.URL, `{"kind": "fig6b", "events": 150}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if want := "/v1/jobs/" + v.ID; resp.Header.Get("Location") != want {
		t.Fatalf("Location = %q, want %q", resp.Header.Get("Location"), want)
	}
	final := waitForStatus(t, ts.URL, v.ID, StatusDone)
	if len(final.Result) == 0 {
		t.Fatal("done job has no inline result")
	}
	var fig6 map[string]any
	if err := json.Unmarshal(final.Result, &fig6); err != nil {
		t.Fatalf("inline result not JSON: %v", err)
	}
	if fig6["variant"] != "b" {
		t.Fatalf("result variant = %v, want b", fig6["variant"])
	}

	// The poll result and a cache hit for the same spec carry the same
	// JSON (the envelope encoder re-indents the inline copy, so compare
	// compacted).
	r2, b2 := post(t, ts.URL, `{"kind": "fig6b", "events": 150, "wait": true}`)
	if r2.Header.Get("X-Cache") != "hit" {
		t.Fatalf("X-Cache = %q, want hit", r2.Header.Get("X-Cache"))
	}
	var cached, polled bytes.Buffer
	if err := json.Compact(&cached, b2); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&polled, final.Result); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cached.Bytes(), polled.Bytes()) {
		t.Fatal("polled result differs from cached body")
	}
}

// TestGracefulShutdownDrains: Shutdown refuses new work but queued and
// running jobs complete.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts, started, release := blockingServer(t, Options{Workers: 1, QueueSize: 4})

	var ids []string
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL, fmt.Sprintf(`{"kind": "fig6a", "events": %d}`, 200+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: %d %s", i, resp.StatusCode, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	<-started // worker holds job 0; jobs 1,2 queued

	var wg sync.WaitGroup
	wg.Add(1)
	shutdownDone := make(chan error, 1)
	go func() {
		defer wg.Done()
		shutdownDone <- s.Shutdown(context.Background())
	}()

	// Draining: new submissions are refused with backoff advice (the
	// 503 must carry Retry-After just like the 429 path), health
	// reports it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, ts.URL, `{"kind": "fig6a", "events": 999}`)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("drain 503 without a Retry-After header")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("submissions still accepted during shutdown")
		}
		time.Sleep(time.Millisecond)
	}
	// Liveness stays green through the drain (a supervisor must not
	// mistake an orderly restart for a crash); readiness goes red.
	hr, hb := get(t, ts.URL+"/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200 (liveness)", hr.StatusCode)
	}
	if !strings.Contains(string(hb), `"draining"`) {
		t.Fatalf("healthz body during drain = %s, want status draining", hb)
	}
	if rr, _ := get(t, ts.URL+"/readyz"); rr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", rr.StatusCode)
	}

	// Unblock the workers: remaining queued jobs run to completion.
	close(release)
	go func() { // drain the remaining start signals
		for range started {
		}
	}()
	wg.Wait()
	close(started)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, id := range ids {
		resp, body := get(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s after drain: %d", id, resp.StatusCode)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusDone {
			t.Fatalf("job %s = %q after graceful drain, want done", id, v.Status)
		}
	}
}

// TestForcedShutdownCancels: an expired Shutdown context cancels
// in-flight jobs instead of waiting forever.
func TestForcedShutdownCancels(t *testing.T) {
	s, ts, started, _ := blockingServer(t, Options{Workers: 1})
	resp, body := post(t, ts.URL, `{"kind": "fig6a", "events": 300}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST: %d %s", resp.StatusCode, body)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	got := waitForStatus(t, ts.URL, v.ID, StatusCancelled)
	if got.Error == "" {
		t.Fatal("cancelled job carries no error")
	}
}

// TestScenarioKind: a full config.File document runs and caches by
// scenario fingerprint, so formatting differences share one entry.
func TestScenarioKind(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	f, err := config.Parse([]byte(config.Example))
	if err != nil {
		t.Fatal(err)
	}
	f.IRQs[0].Events = 300 // keep the test fast
	doc, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	spec := fmt.Sprintf(`{"kind": "scenario", "wait": true, "scenario": %s}`, doc)
	r1, b1 := post(t, ts.URL, spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", r1.StatusCode, b1)
	}
	var res map[string]any
	if err := json.Unmarshal(b1, &res); err != nil {
		t.Fatal(err)
	}
	if _, ok := res["summary"]; !ok {
		t.Fatal("scenario result has no summary")
	}
	// Same document, different JSON formatting → same fingerprint →
	// cache hit with identical bytes.
	spaced, err := json.MarshalIndent(f, "", "    ")
	if err != nil {
		t.Fatal(err)
	}
	r2, b2 := post(t, ts.URL, fmt.Sprintf(`{"kind": "scenario", "wait": true, "scenario": %s}`, spaced))
	if r2.Header.Get("X-Cache") != "hit" || !bytes.Equal(b1, b2) {
		t.Fatal("reformatted scenario missed the cache")
	}
}

// TestSpecValidation: malformed and invalid specs are 400s, unknown
// jobs 404.
func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for _, bad := range []string{
		`{`,
		`{"kind": "fig9"}`,
		`{}`,
		`{"kind": "fig6a", "bogus": 1}`,
		`{"kind": "fig6a", "events": -5}`,
		`{"kind": "fig6a", "window": 10}`,
		`{"kind": "scenario"}`,
		`{"kind": "scenario", "seed": 7, "scenario": {"partitions": [{"name": "p", "slot_us": 100}], "irqs": []}}`,
	} {
		if resp, _ := post(t, ts.URL, bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: %d, want 400", bad, resp.StatusCode)
		}
	}
	if resp, _ := get(t, ts.URL+"/v1/jobs/nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestMetricsEndpoint: the exposition carries the job, queue and cache
// series the ISSUE names.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	if r, b := post(t, ts.URL, `{"kind": "fig6a", "events": 120, "wait": true}`); r.StatusCode != http.StatusOK {
		t.Fatalf("POST: %d %s", r.StatusCode, b)
	}
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"repro_server_jobs_accepted_total 1",
		"repro_server_jobs_completed_total 1",
		"repro_server_cache_misses_total 1",
		"repro_server_cache_hits_total 0",
		"repro_server_queue_depth 0",
		"repro_server_job_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestFailingExecutor: a real executor error is reported as failed —
// 500 with the error text for a blocking POST, status "failed" on
// polls — not misclassified as cancelled, and never cached.
func TestFailingExecutor(t *testing.T) {
	reg := metrics.NewRegistry()
	s, ts := newTestServer(t, Options{Workers: 1, Registry: reg})
	s.run = func(ctx context.Context, sp *Spec) ([]byte, error) {
		return nil, errors.New("boom")
	}

	resp, body := post(t, ts.URL, `{"kind": "fig6a", "events": 130, "wait": true}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("POST: %d %s, want 500", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "boom") {
		t.Fatalf("error body %q does not carry the executor error", body)
	}
	if got := reg.Counter("repro_server_jobs_failed_total").Value(); got != 1 {
		t.Fatalf("failed = %d, want 1", got)
	}
	if got := reg.Counter("repro_server_jobs_cancelled_total").Value(); got != 0 {
		t.Fatalf("cancelled = %d, want 0", got)
	}
	if got := s.cache.Len(); got != 0 {
		t.Fatalf("cache len = %d after failure, want 0", got)
	}

	// Async path: the poll view reaches "failed" with the error text.
	resp2, body2 := post(t, ts.URL, `{"kind": "fig6a", "events": 131}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("async POST: %d %s", resp2.StatusCode, body2)
	}
	var v jobView
	if err := json.Unmarshal(body2, &v); err != nil {
		t.Fatal(err)
	}
	final := waitForStatus(t, ts.URL, v.ID, StatusFailed)
	if !strings.Contains(final.Error, "boom") {
		t.Fatalf("failed job error = %q, want it to carry \"boom\"", final.Error)
	}
}

// TestInflightDedup: a second identical POST arriving while the first
// is still queued/running coalesces onto the same job — the executor
// runs once and both waiters receive identical bodies.
func TestInflightDedup(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts, started, release := blockingServer(t, Options{Workers: 1, Registry: reg})
	spec := `{"kind": "fig6a", "events": 140, "wait": true}`

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(spec))
			if err != nil {
				results <- result{}
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results <- result{resp.StatusCode, b}
		}()
	}

	<-started // exactly one execution begins
	// Wait until the second request has observably attached to the
	// first job before letting it finish.
	deadline := time.Now().Add(5 * time.Second)
	for reg.Counter("repro_server_jobs_coalesced_total").Value() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want 1",
				reg.Counter("repro_server_jobs_coalesced_total").Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)

	a, b := <-results, <-results
	if a.status != http.StatusOK || b.status != http.StatusOK {
		t.Fatalf("statuses = %d, %d, want 200, 200", a.status, b.status)
	}
	if !bytes.Equal(a.body, b.body) {
		t.Fatal("coalesced waiters received different bodies")
	}
	if got := reg.Counter("repro_server_jobs_accepted_total").Value(); got != 1 {
		t.Fatalf("accepted = %d, want 1 (identical concurrent POSTs must not both enqueue)", got)
	}
	select {
	case k := <-started:
		t.Fatalf("second execution started (%s); identical in-flight work recomputed", k)
	default:
	}
}

// TestJobRetention: finished jobs beyond the retention bound are
// dropped from the index (GET becomes 404), so the jobs map — and the
// result bodies it pins — cannot grow with jobs ever accepted.
func TestJobRetention(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, JobRetention: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		resp, body := post(t, ts.URL, fmt.Sprintf(`{"kind": "fig6a", "events": %d}`, 160+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: %d %s", i, resp.StatusCode, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		waitForStatus(t, ts.URL, v.ID, StatusDone)
		ids = append(ids, v.ID)
	}
	// Retirement happens just after the done status becomes visible;
	// poll for the oldest record to age out.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := get(t, ts.URL+"/v1/jobs/"+ids[0])
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still pollable beyond retention", ids[0])
		}
		time.Sleep(time.Millisecond)
	}
	for _, id := range ids[1:] {
		if resp, _ := get(t, ts.URL+"/v1/jobs/"+id); resp.StatusCode != http.StatusOK {
			t.Fatalf("job %s within retention: %d, want 200", id, resp.StatusCode)
		}
	}
}

// TestCacheEviction: the LRU bound holds and evicted entries recompute
// identically.
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, CacheSize: 2})
	specN := func(n int) string {
		return fmt.Sprintf(`{"kind": "fig6a", "events": %d, "wait": true}`, n)
	}
	_, b1 := post(t, ts.URL, specN(110))
	post(t, ts.URL, specN(111))
	post(t, ts.URL, specN(112)) // evicts 110
	if got := s.cache.Len(); got != 2 {
		t.Fatalf("cache len = %d, want 2", got)
	}
	r, b := post(t, ts.URL, specN(110))
	if r.Header.Get("X-Cache") != "miss" {
		t.Fatalf("evicted entry X-Cache = %q, want miss", r.Header.Get("X-Cache"))
	}
	if !bytes.Equal(b, b1) {
		t.Fatal("recomputed body differs from original")
	}
}
