package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/store"
)

// Options configures a Server. Zero values select the defaults noted
// per field.
type Options struct {
	// Workers is the size of the shared worker pool; 0 selects
	// runner.Default() (REPRO_WORKERS or GOMAXPROCS).
	Workers int
	// QueueSize bounds the FIFO job queue; admission beyond it is
	// refused with 429 + Retry-After. 0 = 64.
	QueueSize int
	// CacheSize bounds the result cache (entries). 0 = 128.
	CacheSize int
	// JobTimeout is the per-job deadline; an expired job is cancelled
	// and reported as 504. 0 = 5 minutes.
	JobTimeout time.Duration
	// JobRetention bounds how many finished jobs stay pollable via
	// GET /v1/jobs/{id}; beyond it the oldest finished records (and
	// their result bodies) are dropped and polling them is a 404, so
	// daemon memory is bounded by retention + cache, not by jobs ever
	// accepted. 0 = 256.
	JobRetention int
	// RetryAfter is the backoff advice on 429 responses. 0 = 1s.
	RetryAfter time.Duration
	// Registry receives the server metrics; nil = metrics.Default().
	Registry *metrics.Registry

	// DataDir enables durability. When set, the daemon keeps a
	// disk-backed content-addressed result store (internal/store) under
	// DataDir/store and a write-ahead job journal under
	// DataDir/journal.wal: accepted jobs are journaled before they are
	// acked, results survive restarts, and New replays the journal —
	// re-enqueueing jobs that were queued or running at crash time.
	// "" = memory only (the PR 2 behaviour).
	DataDir string
	// Fsync makes journal appends and store writes sync before they
	// count, trading latency for power-loss durability. Without it,
	// writes are still atomic (tmp+rename / sequential append with
	// torn-tail recovery) but the last instants before a crash may be
	// lost.
	Fsync bool
	// StoreMaxBytes bounds the durable store; cold entries are deleted
	// beyond it. 0 = 256 MiB.
	StoreMaxBytes int64
	// JournalCompactBytes triggers live journal compaction: whenever a
	// job retires (or a campaign finishes) with the journal past this
	// size, the daemon rewrites it down to the live records — accepts
	// for non-terminal jobs plus generator specs for non-terminal
	// campaigns — under the admission lock, so a million-cell campaign
	// cannot grow the journal without bound. 0 = 4 MiB; negative
	// disables live compaction (the clean-drain compaction remains).
	JournalCompactBytes int64
	// Executor overrides how jobs are computed; nil selects the real
	// experiment dispatch. This is a harness seam — the crash–restart
	// tests substitute a deterministic stub so replayed jobs run it
	// from the first instant of New — not a production knob.
	Executor func(ctx context.Context, sp *Spec) ([]byte, error)

	// Cluster makes this daemon a ring member (internal/cluster): local
	// misses consult the key's replicas before recomputing (X-Cache:
	// peer), campaigns scatter cells to their ring owners, the peer
	// endpoints (/v1/peer/*) come up, and Shutdown hands unfinished
	// journal records to ring successors. nil = single node (every
	// prior behaviour unchanged).
	Cluster *cluster.Cluster
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runner.Default()
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 5 * time.Minute
	}
	if o.JobRetention <= 0 {
		o.JobRetention = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.JournalCompactBytes == 0 {
		o.JournalCompactBytes = 4 << 20
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
}

// Job states, as reported by GET /v1/jobs/{id}.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled" // deadline exceeded or shutdown
)

// job is one admitted experiment. done closes exactly once, after
// status/body/err reached their final values; waiters (blocking POSTs,
// pollers) read them only after done.
type job struct {
	id        string
	key       string
	spec      *Spec
	done      chan struct{}
	recovered bool // re-enqueued by journal replay, not freshly admitted

	mu     sync.Mutex
	status string
	body   []byte
	err    string
}

// cached consults c for a recovered job's key; fresh jobs always
// report a miss without touching the cache (or its counters).
func (j *job) cached(c *cache) ([]byte, string) {
	if !j.recovered {
		return nil, cacheMiss
	}
	return c.Get(j.key)
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

func (j *job) view(includeResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.id, Status: j.status, Key: j.key, Error: j.err}
	if includeResult && j.status == StatusDone {
		v.Result = json.RawMessage(j.body)
	}
	return v
}

// jobView is the GET /v1/jobs/{id} response body.
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Key    string          `json:"key"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Server is the simulation daemon: a bounded queue feeding a worker
// pool, fronted by a content-addressed result cache.
type Server struct {
	opts  Options
	reg   *metrics.Registry
	cache *cache

	qmu    sync.Mutex // guards queue sends vs close on shutdown
	queue  chan *job
	closed bool

	jmu      sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // key → queued/running job (singleflight)
	finished []string        // finished job ids, oldest first (retention)

	// Campaign table. Lock order is jmu → cmu: admission journals the
	// campaign under jmu before registering it under cmu, and the
	// live-record snapshot takes cmu while holding jmu. cmu is never
	// held while acquiring jmu.
	cmu          sync.Mutex
	campaigns    map[string]*campaignState
	campInflight map[string]*campaignState // key → running campaign (singleflight)
	campFinished []string                  // finished campaign ids, oldest first

	nextID     atomic.Uint64
	nextCampID atomic.Uint64
	draining   atomic.Bool
	ready      atomic.Bool // false until journal replay has re-enqueued everything
	compacting atomic.Bool // at most one live journal compaction at a time
	wg         sync.WaitGroup
	campWG     sync.WaitGroup // campaign feeder goroutines

	store   *store.Store     // nil without DataDir
	jl      *journal         // nil without DataDir
	cluster *cluster.Cluster // nil = single node

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// run executes one job; overridable in tests for deterministic
	// blocking/timeout behaviour. The default dispatches on Kind.
	// customExec records that run was replaced via Options.Executor —
	// the warm-prefix cell path steps aside so the stub sees every job.
	run        func(ctx context.Context, sp *Spec) ([]byte, error)
	customExec bool

	accepted     *metrics.Counter
	rejected     *metrics.Counter
	completed    *metrics.Counter
	failed       *metrics.Counter
	cancelled    *metrics.Counter
	coalesced    *metrics.Counter
	panicked     *metrics.Counter
	replayed     *metrics.Counter
	tornTail     *metrics.Counter
	journalErrs  *metrics.Counter
	compactions  *metrics.Counter
	queueDepth   *metrics.Gauge
	jobSecs      *metrics.Histogram
	campAccepted *metrics.Counter
	campDone     *metrics.Counter
	campFailed   *metrics.Counter
	campResumed  *metrics.Counter
	campMerged   *metrics.Counter
	campCellHits *metrics.Counter
	campActive   *metrics.Gauge

	// Differential-fuzz instrumentation: cells merged into diffuzz
	// campaigns and bound violations among them.
	diffuzzMerged     *metrics.Counter
	diffuzzViolations *metrics.Counter

	// Cluster instrumentation (registered even without a cluster so the
	// exposition is deterministic either way).
	peerHits        *metrics.Counter
	peerServed      *metrics.Counter
	cellsDispatched *metrics.Counter
	cellsReowned    *metrics.Counter
	handoffShipped  *metrics.Counter
	handoffAdopted  *metrics.Counter
}

// New starts a Server: opts.Workers goroutines begin draining the
// queue immediately. With Options.DataDir, the durable store and the
// write-ahead journal are opened first and the journal is replayed —
// jobs that were queued or running when the previous process died are
// re-enqueued (with their original ids), finished jobs become pollable
// again, and terminal results are served from the store. Readiness
// (Ready, GET /readyz) holds until the replayed backlog is back in the
// queue. Stop it with Shutdown.
func New(opts Options) (*Server, error) {
	opts.fill()
	s := &Server{
		opts:         opts,
		reg:          opts.Registry,
		queue:        make(chan *job, opts.QueueSize),
		jobs:         make(map[string]*job),
		inflight:     make(map[string]*job),
		campaigns:    make(map[string]*campaignState),
		campInflight: make(map[string]*campaignState),
		accepted:     opts.Registry.Counter("repro_server_jobs_accepted_total"),
		rejected:     opts.Registry.Counter("repro_server_jobs_rejected_total"),
		completed:    opts.Registry.Counter("repro_server_jobs_completed_total"),
		failed:       opts.Registry.Counter("repro_server_jobs_failed_total"),
		cancelled:    opts.Registry.Counter("repro_server_jobs_cancelled_total"),
		coalesced:    opts.Registry.Counter("repro_server_jobs_coalesced_total"),
		panicked:     opts.Registry.Counter("repro_server_jobs_panicked_total"),
		replayed:     opts.Registry.Counter("repro_journal_replayed_jobs_total"),
		tornTail:     opts.Registry.Counter("repro_journal_torn_tail_total"),
		journalErrs:  opts.Registry.Counter("repro_journal_append_errors_total"),
		compactions:  opts.Registry.Counter("repro_journal_compactions_total"),
		queueDepth:   opts.Registry.Gauge("repro_server_queue_depth"),
		jobSecs:      opts.Registry.Histogram("repro_server_job_seconds", nil),
		campAccepted: opts.Registry.Counter("repro_campaign_accepted_total"),
		campDone:     opts.Registry.Counter("repro_campaign_completed_total"),
		campFailed:   opts.Registry.Counter("repro_campaign_failed_total"),
		campResumed:  opts.Registry.Counter("repro_campaign_resumed_total"),
		campMerged:   opts.Registry.Counter("repro_campaign_cells_merged_total"),
		campCellHits: opts.Registry.Counter("repro_campaign_cell_cache_hits_total"),

		diffuzzMerged:     opts.Registry.Counter("repro_diffuzz_cells_merged_total"),
		diffuzzViolations: opts.Registry.Counter("repro_diffuzz_violations_total"),
		campActive:        opts.Registry.Gauge("repro_campaign_active"),

		cluster:         opts.Cluster,
		peerHits:        opts.Registry.Counter("repro_cluster_peer_hits_total"),
		peerServed:      opts.Registry.Counter("repro_cluster_peer_results_served_total"),
		cellsDispatched: opts.Registry.Counter("repro_cluster_cells_dispatched_total"),
		cellsReowned:    opts.Registry.Counter("repro_cluster_cells_reowned_total"),
		handoffShipped:  opts.Registry.Counter("repro_cluster_handoff_shipped_total"),
		handoffAdopted:  opts.Registry.Counter("repro_cluster_handoff_adopted_total"),
	}
	// Touch the store series so a memory-only daemon still exposes them
	// (deterministic exposition either way).
	opts.Registry.Counter("repro_store_corruption_total")
	opts.Registry.Gauge("repro_store_bytes_on_disk")

	var pending []*job
	var resumed []*campaignState
	if opts.DataDir != "" {
		st, err := store.Open(filepath.Join(opts.DataDir, "store"), store.Options{
			MaxBytes: opts.StoreMaxBytes,
			Fsync:    opts.Fsync,
			Registry: opts.Registry,
		})
		if err != nil {
			return nil, err
		}
		jl, recs, torn, err := openJournal(filepath.Join(opts.DataDir, "journal.wal"), opts.Fsync)
		if err != nil {
			return nil, err
		}
		s.store, s.jl = st, jl
		if torn {
			s.tornTail.Inc()
		}
		pending, resumed = s.replay(recs)
	}
	s.cache = newCache(opts.CacheSize, s.store, opts.Registry)

	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = execute
	if opts.Executor != nil {
		s.run = opts.Executor
		s.customExec = true
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Resume interrupted campaigns: each refolds from the store (every
	// cell that finished before the crash is a cache hit) and re-submits
	// the rest; replayed pending cell jobs are attached via the in-flight
	// index rather than duplicated.
	resume := func() {
		for _, cs := range resumed {
			s.campResumed.Inc()
			s.campActive.Add(1)
			s.campWG.Add(1)
			go s.feedCampaign(cs)
		}
	}
	if len(pending) == 0 {
		s.ready.Store(true)
		resume()
	} else {
		// Re-enqueue the crashed backlog in journal order. The queue may
		// be smaller than the backlog, so this rides backpressure (the
		// workers are already draining) instead of using the admission
		// fast path; readiness holds until the whole backlog is queued.
		go func() {
			for _, jb := range pending {
				s.reenqueue(jb)
			}
			s.ready.Store(true)
			resume()
		}()
	}
	return s, nil
}

// replay folds the journal records into the job and campaign tables:
// every accept recreates its job (same id, same key, same spec), every
// campaign record recreates its campaign, every terminal record
// finishes one of them ("c…" ids are campaigns, "j…" ids jobs). Jobs
// left non-terminal were queued or running at crash time and are
// returned for re-enqueueing; campaigns left non-terminal are returned
// for resumption (their aggregates refold from the store). Result
// bodies are not loaded here — a "done" job's or campaign's body is
// fetched from the content-addressed store on demand.
func (s *Server) replay(recs []journalRecord) ([]*job, []*campaignState) {
	var order []*job
	byID := make(map[string]*job)
	var campOrder []*campaignState
	campByID := make(map[string]*campaignState)
	var maxID, maxCampID uint64
	for _, rec := range recs {
		switch rec.Op {
		case opAccept:
			if rec.ID == "" || rec.Key == "" || rec.Spec == nil {
				continue // malformed but checksum-clean: skip defensively
			}
			jb := &job{
				id:        rec.ID,
				key:       rec.Key,
				spec:      rec.Spec,
				done:      make(chan struct{}),
				status:    StatusQueued,
				recovered: true,
			}
			byID[rec.ID] = jb
			order = append(order, jb)
			if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "j"), 10, 64); err == nil && n > maxID {
				maxID = n
			}
			s.replayed.Inc()
		case opCampaign:
			if rec.ID == "" || rec.Key == "" || rec.Camp == nil || campByID[rec.ID] != nil {
				continue
			}
			agg, err := campaign.NewAggregate(*rec.Camp)
			if err != nil {
				continue // spec no longer valid under this code revision
			}
			cs := &campaignState{
				id:        rec.ID,
				key:       rec.Key,
				agg:       agg,
				status:    StatusRunning,
				watch:     make(chan struct{}),
				recovered: true,
			}
			campByID[rec.ID] = cs
			campOrder = append(campOrder, cs)
			if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "c"), 10, 64); err == nil && n > maxCampID {
				maxCampID = n
			}
		case opDone, opFailed, opCancelled:
			if cs := campByID[rec.ID]; cs != nil {
				if cs.status == StatusRunning {
					if rec.Op == opDone {
						cs.status = StatusDone // body served lazily from the store
					} else {
						cs.status = StatusFailed
						cs.err = rec.Err
					}
				}
				continue
			}
			jb := byID[rec.ID]
			if jb == nil || jb.status != StatusQueued {
				continue
			}
			switch rec.Op {
			case opDone:
				jb.status = StatusDone // body served lazily from the store
			case opFailed:
				jb.status = StatusFailed
				jb.err = rec.Err
			case opCancelled:
				jb.status = StatusCancelled
				jb.err = rec.Err
			}
			close(jb.done)
		}
	}
	s.nextID.Store(maxID)
	s.nextCampID.Store(maxCampID)

	var pending []*job
	s.jmu.Lock()
	for _, jb := range order {
		s.jobs[jb.id] = jb
		if jb.status == StatusQueued {
			pending = append(pending, jb)
			if s.inflight[jb.key] == nil {
				s.inflight[jb.key] = jb
			}
			continue
		}
		s.finished = append(s.finished, jb.id)
		for len(s.finished) > s.opts.JobRetention {
			delete(s.jobs, s.finished[0])
			copy(s.finished, s.finished[1:])
			s.finished = s.finished[:len(s.finished)-1]
		}
	}
	s.jmu.Unlock()

	var resumed []*campaignState
	s.cmu.Lock()
	for _, cs := range campOrder {
		s.campaigns[cs.id] = cs
		if cs.status == StatusRunning {
			resumed = append(resumed, cs)
			if s.campInflight[cs.key] == nil {
				s.campInflight[cs.key] = cs
			}
			continue
		}
		s.campFinished = append(s.campFinished, cs.id)
		for len(s.campFinished) > s.opts.JobRetention {
			delete(s.campaigns, s.campFinished[0])
			copy(s.campFinished, s.campFinished[1:])
			s.campFinished = s.campFinished[:len(s.campFinished)-1]
		}
	}
	s.cmu.Unlock()
	return pending, resumed
}

// reenqueue pushes one replayed job into the queue, waiting out
// backpressure. If shutdown wins the race, the job finishes as
// cancelled — journaled, so the *next* restart sees it terminal.
func (s *Server) reenqueue(jb *job) {
	for {
		switch s.enqueue(jb) {
		case admitted:
			return
		case shuttingDown:
			jb.mu.Lock()
			jb.status = StatusCancelled
			jb.err = "daemon shut down before the replayed job could re-run"
			jb.mu.Unlock()
			s.cancelled.Inc()
			s.journalTerminal(jb, opCancelled, jb.err)
			close(jb.done)
			s.retire(jb)
			return
		case queueFull:
			time.Sleep(time.Millisecond)
		}
	}
}

// journalAccept write-ahead-logs one admission. An error means the
// job must not be acked (the caller refuses the submission): the
// write-ahead contract is exactly that nothing is promised that the
// journal does not hold.
func (s *Server) journalAccept(jb *job) error {
	if s.jl == nil {
		return nil
	}
	err := s.jl.append(journalRecord{Op: opAccept, ID: jb.id, Key: jb.key, Spec: jb.spec})
	if err != nil {
		s.journalErrs.Inc()
	}
	return err
}

// journalTerminal best-effort-logs a terminal transition. A lost
// terminal record is safe — replay re-enqueues the job and the
// recompute short-circuits on the stored result — so errors only
// count, they never fail the job.
func (s *Server) journalTerminal(jb *job, op, errMsg string) {
	if s.jl == nil {
		return
	}
	if err := s.jl.append(journalRecord{Op: op, ID: jb.id, Err: errMsg}); err != nil {
		s.journalErrs.Inc()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	// Each worker owns one warm-prefix cell runner: consecutive cells of
	// the same campaign prefix group restore the worker's DES snapshot
	// instead of re-simulating the shared prefix (engine.ForkCampaign).
	// The runner is confined to this goroutine — arenas are not safe for
	// sharing — and holds at most one snapshot at a time.
	cr := campaign.NewRunner()
	for jb := range s.queue {
		s.queueDepth.Add(-1)
		s.runJob(jb, cr)
	}
}

func (s *Server) runJob(jb *job, cr *campaign.Runner) {
	// A replayed job whose result already reached the content-addressed
	// store before the crash (the store write precedes the terminal
	// journal record) completes without recomputation: the key
	// identifies the bytes exactly. Freshly admitted jobs skip this —
	// submit already checked the cache under the in-flight lock.
	if body, src := jb.cached(s.cache); src != cacheMiss {
		jb.mu.Lock()
		jb.status = StatusDone
		jb.body = body
		jb.mu.Unlock()
		s.completed.Inc()
		s.journalTerminal(jb, opDone, "")
		close(jb.done)
		s.retire(jb)
		return
	}

	jb.setStatus(StatusRunning)
	start := time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	body, err := s.runIsolated(ctx, jb.spec, cr)
	// Read the deadline state before cancel(): afterwards ctx.Err() is
	// unconditionally non-nil and every failure would look cancelled.
	ctxErr := ctx.Err()
	cancel()
	s.jobSecs.ObserveDuration(time.Since(start))

	var op, errMsg string
	jb.mu.Lock()
	switch {
	case err == nil:
		jb.status = StatusDone
		jb.body = body
		// Store before the terminal record: if a crash lands between
		// the two, replay re-enqueues the job and the recompute
		// short-circuits on the stored bytes.
		s.cache.Put(jb.key, body)
		s.completed.Inc()
		op = opDone
	case ctxErr != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Deadline or shutdown beat the job; the computation itself
		// did not fail.
		jb.status = StatusCancelled
		jb.err = err.Error()
		s.cancelled.Inc()
		op, errMsg = opCancelled, jb.err
	default:
		jb.status = StatusFailed
		jb.err = err.Error()
		s.failed.Inc()
		op, errMsg = opFailed, jb.err
	}
	jb.mu.Unlock()
	s.journalTerminal(jb, op, errMsg)
	close(jb.done)
	s.retire(jb)
}

// runIsolated executes one job with panic isolation: a poisoned spec
// that panics the engine fails that job (the recovered value becomes
// its error, surfaced as HTTP 500 / status "failed") instead of
// killing the worker and, with it, the daemon. The stack is dropped
// deliberately — the panic value plus the job's content-addressed spec
// reproduce the crash offline.
func (s *Server) runIsolated(ctx context.Context, sp *Spec, cr *campaign.Runner) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked.Inc()
			body, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	// Cell jobs take the worker's warm-prefix runner unless a test
	// substituted the executor (the stub must then see every job).
	if sp.Kind == "cell" && !s.customExec {
		res, err := cr.Run(*sp.Cell)
		if err != nil {
			return nil, err
		}
		return report.EncodeCell(res)
	}
	return s.run(ctx, sp)
}

// retire unregisters jb from the in-flight index (new identical
// submissions recompute unless the result was cached) and enforces the
// finished-job retention bound: beyond opts.JobRetention the oldest
// finished records — and the result bodies they hold — are dropped
// from the jobs map, so memory does not grow with jobs ever accepted.
func (s *Server) retire(jb *job) {
	s.jmu.Lock()
	if s.inflight[jb.key] == jb {
		delete(s.inflight, jb.key)
	}
	s.finished = append(s.finished, jb.id)
	for len(s.finished) > s.opts.JobRetention {
		delete(s.jobs, s.finished[0])
		copy(s.finished, s.finished[1:])
		s.finished = s.finished[:len(s.finished)-1]
	}
	s.jmu.Unlock()
	s.maybeCompactJournal()
}

// enqueue outcome.
type admission int

const (
	admitted admission = iota
	queueFull
	shuttingDown
)

func (s *Server) enqueue(jb *job) admission {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		return shuttingDown
	}
	select {
	case s.queue <- jb:
		s.queueDepth.Add(1)
		return admitted
	default:
		return queueFull
	}
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaign)
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.handleCampaignStream)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/peer/results/{key}", s.handlePeerResult)
	mux.HandleFunc("POST /v1/peer/handoff", s.handleHandoff)
	mux.HandleFunc("GET /v1/cluster", s.handleClusterStatus)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxSpecBytes bounds request bodies; scenario documents are small.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	s.submit(w, r, sp)
}

// chaosRequest is the POST /v1/chaos body: the campaign document plus
// the protocol-level deterministic inputs shared with Spec.
type chaosRequest struct {
	ChaosSpec
	Events int    `json:"events,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Wait   bool   `json:"wait,omitempty"`
}

// handleChaos is sugar for POST /v1/experiments with kind "chaos": it
// admits a chaos campaign through the same queue, cache and
// singleflight path as every other job kind.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req chaosRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid chaos spec: %v", err)
		return
	}
	cs := req.ChaosSpec
	s.submit(w, r, Spec{
		Kind:   "chaos",
		Events: req.Events,
		Seed:   req.Seed,
		Wait:   req.Wait,
		Chaos:  &cs,
	})
}

// submit drives an admission end to end: normalize → content address →
// cache → singleflight → queue, answering with the cached body, a 202,
// or the job's terminal state.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, sp Spec) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	if err := sp.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := sp.key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if body, src := s.cache.Get(key); src != cacheMiss {
		writeResult(w, key, src, body)
		return
	}
	// Cold locally: a replica may hold the bytes — a verified peer
	// fetch beats recomputing by an order of magnitude.
	if body, src, ok := s.peerFetch(r.Context(), key); ok {
		writeResult(w, key, src, body)
		return
	}

	// Singleflight: a second request for a key that is already queued
	// or running attaches to the existing job instead of recomputing —
	// the content address guarantees the results would be identical.
	s.jmu.Lock()
	if existing := s.inflight[key]; existing != nil {
		s.jmu.Unlock()
		s.coalesced.Inc()
		s.respond(w, r, existing, key, sp.Wait)
		return
	}
	jb := &job{
		id:     fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:    key,
		spec:   &sp,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
	// Write-ahead: the accept record must be on disk before the job is
	// acked. Holding jmu keeps journal order consistent with admission
	// order. A journal that cannot take the record refuses the
	// submission — promising work the journal does not hold is exactly
	// the crash-unsafety this layer removes.
	//reprolint:allow lockheld write-ahead ordering: the accept must be durable before the ack, the fsync is the admission cost
	if err := s.journalAccept(jb); err != nil {
		s.jmu.Unlock()
		s.unavailable(w)
		return
	}
	// Enqueue while holding jmu so the inflight check-then-register is
	// atomic (enqueue only takes qmu, and never the other way around).
	adm := s.enqueue(jb)
	if adm == admitted {
		s.jobs[jb.id] = jb
		s.inflight[key] = jb
	}
	s.jmu.Unlock()
	switch adm {
	case queueFull:
		// The accept was journaled but the job never ran; close it out
		// so replay does not resurrect a refused submission.
		s.journalTerminal(jb, opCancelled, "refused: queue full")
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, "job queue full (%d pending)", s.opts.QueueSize)
		return
	case shuttingDown:
		s.journalTerminal(jb, opCancelled, "refused: shutting down")
		s.unavailable(w)
		return
	}
	s.accepted.Inc()
	s.respond(w, r, jb, key, sp.Wait)
}

// respond completes a submission against jb: a 202 + Location for
// fire-and-forget, or (wait) the job's terminal state as 200/504/500.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, jb *job, key string, wait bool) {
	if !wait {
		w.Header().Set("Location", "/v1/jobs/"+jb.id)
		writeJSON(w, http.StatusAccepted, jb.view(false))
		return
	}
	select {
	case <-jb.done:
	case <-r.Context().Done():
		// Client gave up; the job keeps running and fills the cache.
		return
	}
	jb.mu.Lock()
	status, body, errMsg := jb.status, jb.body, jb.err
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		writeResult(w, key, "miss", body)
	case StatusCancelled:
		httpError(w, http.StatusGatewayTimeout, "job %s cancelled: %s", jb.id, errMsg)
	default:
		httpError(w, http.StatusInternalServerError, "job %s failed: %s", jb.id, errMsg)
	}
}

// handleJob serves job status. Finished jobs are pollable until they
// age out of the retention window (Options.JobRetention), after which
// the id is a 404 like any unknown id.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jmu.Lock()
	jb, ok := s.jobs[r.PathValue("id")]
	s.jmu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	v := jb.view(true)
	// A job replayed as "done" holds no body in memory — the journal
	// records only the transition. Fetch it from the durable store by
	// content address (promoting it into the memory tier).
	if v.Status == StatusDone && len(v.Result) == 0 {
		if body, src := s.cache.Get(jb.key); src != cacheMiss {
			v.Result = json.RawMessage(body)
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleResult serves a stored result body directly by content
// address. Job ids age out of the retention window, but the bytes
// outlive them in the durable store — a client that kept the key (it
// is in every 202 and every terminal response) resolves the result
// here instead of treating the expired id as lost work.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if body, src := s.cache.Get(key); src != cacheMiss {
		writeResult(w, key, src, body)
		return
	}
	// A ring peer may still hold the bytes (e.g. this node restarted
	// with a wiped store): resolve by content address before 404ing.
	if body, src, ok := s.peerFetch(r.Context(), key); ok {
		writeResult(w, key, src, body)
		return
	}
	httpError(w, http.StatusNotFound, "no stored result for key %q", key)
}

// handleHealth is *liveness*: it answers 200 as long as the process
// can serve HTTP — including while draining or replaying the journal —
// so a supervisor does not mistake an orderly restart for a crash and
// SIGKILL a daemon that is busy compacting. Readiness lives on
// /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      s.phase(),
		"queue_depth": s.queueDepth.Value(),
		"cached":      s.cache.Len(),
		"journal":     s.journalStatus(),
		"store":       s.storeStatus(),
	})
}

// handleReady is *readiness*: 503 while the daemon is not accepting
// work — during journal replay at startup and during drain — so a load
// balancer routes around a restarting instance without its liveness
// probe ever failing.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	phase := s.phase()
	code := http.StatusOK
	if phase != "ok" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	}
	writeJSON(w, code, map[string]any{
		"ready":  phase == "ok",
		"status": phase,
	})
}

// phase reports the daemon's lifecycle phase: "replaying" (journal
// backlog not yet re-enqueued), "draining" (shutdown in progress) or
// "ok".
func (s *Server) phase() string {
	switch {
	case s.draining.Load():
		return "draining"
	case !s.ready.Load():
		return "replaying"
	default:
		return "ok"
	}
}

// Ready reports whether the daemon is accepting work (journal replay
// complete, not draining).
func (s *Server) Ready() bool { return s.phase() == "ok" }

func (s *Server) journalStatus() map[string]any {
	st := map[string]any{"enabled": s.jl != nil}
	if s.jl != nil {
		st["replayed_jobs"] = s.replayed.Value()
		st["torn_tail"] = s.tornTail.Value()
		st["append_errors"] = s.journalErrs.Value()
	}
	return st
}

func (s *Server) storeStatus() map[string]any {
	st := map[string]any{"enabled": s.store != nil}
	if s.store != nil {
		st["entries"] = s.store.Len()
		st["bytes"] = s.store.Bytes()
		st["corruption"] = s.reg.Counter("repro_store_corruption_total").Value()
	}
	return st
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.reg.WriteTo(w)
}

// Shutdown drains the daemon gracefully: new submissions are refused
// (503), queued and running jobs finish, workers exit. If ctx expires
// first, in-flight jobs are cancelled (they finish as "cancelled") and
// Shutdown returns ctx.Err() once the workers are down.
//
// A *clean* drain additionally compacts the journal down to the live
// records: every accepted job is terminal and its result durable in
// the store, so only campaigns the drain interrupted mid-expansion
// remain — their generator specs are rewritten so the next start
// resumes them (refolding the already-stored cells). A forced drain
// skips compaction — the cancelled jobs' terminal records are already
// appended, so replay still sees them terminal.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		// Feeders exit once their outstanding cell jobs are terminal,
		// which the drained queue guarantees.
		s.campWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		// Forced: snapshot the live records *before* cancelling, while
		// the interrupted jobs are still non-terminal, and ship them to
		// ring successors — the cancelled records appended below do not
		// erase the successors' adopted copies.
		s.shipHandoff()
		s.baseCancel()
		<-drained
		err = ctx.Err()
	}
	if err == nil {
		// Clean drain: every job is terminal; what remains live are
		// campaigns the drain interrupted mid-expansion. Hand their
		// generator specs to successors so the cluster finishes them
		// without waiting for this node to come back.
		s.shipHandoff()
	}
	if s.jl != nil {
		if err == nil {
			s.jmu.Lock()
			//reprolint:allow lockheld shutdown path: admission is already drained, nothing contends for jmu
			if cerr := s.jl.compact(s.liveRecords()); cerr == nil {
				s.compactions.Inc()
			}
			s.jmu.Unlock()
		}
		_ = s.jl.close()
	}
	return err
}

// execute runs one normalized spec to its encoded result. Experiment
// internal parallelism is forced to 1: the daemon parallelises across
// jobs, and Workers never belongs in a cache key anyway (it cannot
// change results — see internal/runner).
func execute(ctx context.Context, sp *Spec) ([]byte, error) {
	switch sp.Kind {
	case "fig6a", "fig6b", "fig6c":
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = sp.Events
		cfg.Seed = sp.Seed
		cfg.Workers = 1
		r, err := experiments.Fig6Ctx(ctx, experiments.Fig6Variant(sp.Kind[4]), cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeFig6(r)
	case "fig7":
		cfg := experiments.DefaultFig7()
		cfg.ECU.Events = sp.Events
		cfg.ECU.Seed = sp.Seed
		cfg.Window = sp.Window
		cfg.Workers = 1
		r, err := experiments.Fig7Ctx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeFig7(r)
	case "overhead":
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = sp.Events
		cfg.Seed = sp.Seed
		cfg.Workers = 1
		r, err := experiments.OverheadCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeOverhead(r)
	case "scenario":
		sc, err := sp.Scenario.Scenario()
		if err != nil {
			return nil, err
		}
		res, err := engine.RunManyCtx(ctx, []core.Scenario{sc}, 1)
		if err != nil {
			return nil, err
		}
		return report.EncodeResult(res[0])
	case "cell":
		// Cold two-phase reference path: the worker loop normally runs
		// cells through its warm-prefix runner (see runIsolated), which
		// produces byte-identical documents by the fork-equivalence
		// invariant (internal/campaign).
		res, err := campaign.RunCellCold(*sp.Cell)
		if err != nil {
			return nil, err
		}
		return report.EncodeCell(res)
	case "chaos":
		r, err := faults.Run(ctx, faults.Config{
			Faults:         sp.Chaos.Faults,
			Intensities:    sp.Chaos.Intensities,
			Events:         sp.Events,
			Seed:           sp.Seed,
			Workers:        1,
			DisableMonitor: sp.Chaos.DisableMonitor,
		})
		if err != nil {
			return nil, err
		}
		return report.EncodeChaos(r)
	default:
		return nil, fmt.Errorf("serve: unknown kind %q", sp.Kind)
	}
}

// unavailable refuses a submission during drain/shutdown. Like the
// 429 backpressure path, the 503 carries Retry-After so a well-behaved
// client (internal/serve/client) backs off instead of hammering a
// restarting daemon.
func (s *Server) unavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	httpError(w, http.StatusServiceUnavailable, "server is shutting down")
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeResult(w http.ResponseWriter, key, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Job-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, _ := json.MarshalIndent(v, "", "  ")
	_, _ = w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
