package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/store"
)

// Options configures a Server. Zero values select the defaults noted
// per field.
type Options struct {
	// Workers is the size of the shared worker pool; 0 selects
	// runner.Default() (REPRO_WORKERS or GOMAXPROCS).
	Workers int
	// QueueSize bounds the FIFO job queue; admission beyond it is
	// refused with 429 + Retry-After. 0 = 64.
	QueueSize int
	// CacheSize bounds the result cache (entries). 0 = 128.
	CacheSize int
	// JobTimeout is the per-job deadline; an expired job is cancelled
	// and reported as 504. 0 = 5 minutes.
	JobTimeout time.Duration
	// JobRetention bounds how many finished jobs stay pollable via
	// GET /v1/jobs/{id}; beyond it the oldest finished records (and
	// their result bodies) are dropped and polling them is a 404, so
	// daemon memory is bounded by retention + cache, not by jobs ever
	// accepted. 0 = 256.
	JobRetention int
	// RetryAfter is the backoff advice on 429 responses. 0 = 1s.
	RetryAfter time.Duration
	// Registry receives the server metrics; nil = metrics.Default().
	Registry *metrics.Registry

	// DataDir enables durability. When set, the daemon keeps a
	// disk-backed content-addressed result store (internal/store) under
	// DataDir/store and a write-ahead job journal under
	// DataDir/journal.wal: accepted jobs are journaled before they are
	// acked, results survive restarts, and New replays the journal —
	// re-enqueueing jobs that were queued or running at crash time.
	// "" = memory only (the PR 2 behaviour).
	DataDir string
	// Fsync makes journal appends and store writes sync before they
	// count, trading latency for power-loss durability. Without it,
	// writes are still atomic (tmp+rename / sequential append with
	// torn-tail recovery) but the last instants before a crash may be
	// lost.
	Fsync bool
	// StoreMaxBytes bounds the durable store; cold entries are deleted
	// beyond it. 0 = 256 MiB.
	StoreMaxBytes int64
	// Executor overrides how jobs are computed; nil selects the real
	// experiment dispatch. This is a harness seam — the crash–restart
	// tests substitute a deterministic stub so replayed jobs run it
	// from the first instant of New — not a production knob.
	Executor func(ctx context.Context, sp *Spec) ([]byte, error)
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runner.Default()
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 5 * time.Minute
	}
	if o.JobRetention <= 0 {
		o.JobRetention = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
}

// Job states, as reported by GET /v1/jobs/{id}.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled" // deadline exceeded or shutdown
)

// job is one admitted experiment. done closes exactly once, after
// status/body/err reached their final values; waiters (blocking POSTs,
// pollers) read them only after done.
type job struct {
	id        string
	key       string
	spec      *Spec
	done      chan struct{}
	recovered bool // re-enqueued by journal replay, not freshly admitted

	mu     sync.Mutex
	status string
	body   []byte
	err    string
}

// cached consults c for a recovered job's key; fresh jobs always
// report a miss without touching the cache (or its counters).
func (j *job) cached(c *cache) ([]byte, string) {
	if !j.recovered {
		return nil, cacheMiss
	}
	return c.Get(j.key)
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

func (j *job) view(includeResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.id, Status: j.status, Key: j.key, Error: j.err}
	if includeResult && j.status == StatusDone {
		v.Result = json.RawMessage(j.body)
	}
	return v
}

// jobView is the GET /v1/jobs/{id} response body.
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Key    string          `json:"key"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Server is the simulation daemon: a bounded queue feeding a worker
// pool, fronted by a content-addressed result cache.
type Server struct {
	opts  Options
	reg   *metrics.Registry
	cache *cache

	qmu    sync.Mutex // guards queue sends vs close on shutdown
	queue  chan *job
	closed bool

	jmu      sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // key → queued/running job (singleflight)
	finished []string        // finished job ids, oldest first (retention)

	nextID   atomic.Uint64
	draining atomic.Bool
	ready    atomic.Bool // false until journal replay has re-enqueued everything
	wg       sync.WaitGroup

	store *store.Store // nil without DataDir
	jl    *journal     // nil without DataDir

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// run executes one job; overridable in tests for deterministic
	// blocking/timeout behaviour. The default dispatches on Kind.
	run func(ctx context.Context, sp *Spec) ([]byte, error)

	accepted    *metrics.Counter
	rejected    *metrics.Counter
	completed   *metrics.Counter
	failed      *metrics.Counter
	cancelled   *metrics.Counter
	coalesced   *metrics.Counter
	panicked    *metrics.Counter
	replayed    *metrics.Counter
	tornTail    *metrics.Counter
	journalErrs *metrics.Counter
	queueDepth  *metrics.Gauge
	jobSecs     *metrics.Histogram
}

// New starts a Server: opts.Workers goroutines begin draining the
// queue immediately. With Options.DataDir, the durable store and the
// write-ahead journal are opened first and the journal is replayed —
// jobs that were queued or running when the previous process died are
// re-enqueued (with their original ids), finished jobs become pollable
// again, and terminal results are served from the store. Readiness
// (Ready, GET /readyz) holds until the replayed backlog is back in the
// queue. Stop it with Shutdown.
func New(opts Options) (*Server, error) {
	opts.fill()
	s := &Server{
		opts:        opts,
		reg:         opts.Registry,
		queue:       make(chan *job, opts.QueueSize),
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		accepted:    opts.Registry.Counter("repro_server_jobs_accepted_total"),
		rejected:    opts.Registry.Counter("repro_server_jobs_rejected_total"),
		completed:   opts.Registry.Counter("repro_server_jobs_completed_total"),
		failed:      opts.Registry.Counter("repro_server_jobs_failed_total"),
		cancelled:   opts.Registry.Counter("repro_server_jobs_cancelled_total"),
		coalesced:   opts.Registry.Counter("repro_server_jobs_coalesced_total"),
		panicked:    opts.Registry.Counter("repro_server_jobs_panicked_total"),
		replayed:    opts.Registry.Counter("repro_journal_replayed_jobs_total"),
		tornTail:    opts.Registry.Counter("repro_journal_torn_tail_total"),
		journalErrs: opts.Registry.Counter("repro_journal_append_errors_total"),
		queueDepth:  opts.Registry.Gauge("repro_server_queue_depth"),
		jobSecs:     opts.Registry.Histogram("repro_server_job_seconds", nil),
	}
	// Touch the store series so a memory-only daemon still exposes them
	// (deterministic exposition either way).
	opts.Registry.Counter("repro_store_corruption_total")
	opts.Registry.Gauge("repro_store_bytes_on_disk")

	var pending []*job
	if opts.DataDir != "" {
		st, err := store.Open(filepath.Join(opts.DataDir, "store"), store.Options{
			MaxBytes: opts.StoreMaxBytes,
			Fsync:    opts.Fsync,
			Registry: opts.Registry,
		})
		if err != nil {
			return nil, err
		}
		jl, recs, torn, err := openJournal(filepath.Join(opts.DataDir, "journal.wal"), opts.Fsync)
		if err != nil {
			return nil, err
		}
		s.store, s.jl = st, jl
		if torn {
			s.tornTail.Inc()
		}
		pending = s.replay(recs)
	}
	s.cache = newCache(opts.CacheSize, s.store, opts.Registry)

	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = execute
	if opts.Executor != nil {
		s.run = opts.Executor
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if len(pending) == 0 {
		s.ready.Store(true)
	} else {
		// Re-enqueue the crashed backlog in journal order. The queue may
		// be smaller than the backlog, so this rides backpressure (the
		// workers are already draining) instead of using the admission
		// fast path; readiness holds until the whole backlog is queued.
		go func() {
			for _, jb := range pending {
				s.reenqueue(jb)
			}
			s.ready.Store(true)
		}()
	}
	return s, nil
}

// replay folds the journal records into the job table: every accept
// recreates its job (same id, same key, same spec), every terminal
// record finishes one. Jobs left non-terminal were queued or running
// at crash time and are returned for re-enqueueing. Result bodies are
// not loaded here — a "done" job's body is fetched from the
// content-addressed store on demand.
func (s *Server) replay(recs []journalRecord) []*job {
	var order []*job
	byID := make(map[string]*job)
	var maxID uint64
	for _, rec := range recs {
		switch rec.Op {
		case opAccept:
			if rec.ID == "" || rec.Key == "" || rec.Spec == nil {
				continue // malformed but checksum-clean: skip defensively
			}
			jb := &job{
				id:        rec.ID,
				key:       rec.Key,
				spec:      rec.Spec,
				done:      make(chan struct{}),
				status:    StatusQueued,
				recovered: true,
			}
			byID[rec.ID] = jb
			order = append(order, jb)
			if n, err := strconv.ParseUint(strings.TrimPrefix(rec.ID, "j"), 10, 64); err == nil && n > maxID {
				maxID = n
			}
			s.replayed.Inc()
		case opDone, opFailed, opCancelled:
			jb := byID[rec.ID]
			if jb == nil || jb.status != StatusQueued {
				continue
			}
			switch rec.Op {
			case opDone:
				jb.status = StatusDone // body served lazily from the store
			case opFailed:
				jb.status = StatusFailed
				jb.err = rec.Err
			case opCancelled:
				jb.status = StatusCancelled
				jb.err = rec.Err
			}
			close(jb.done)
		}
	}
	s.nextID.Store(maxID)

	var pending []*job
	s.jmu.Lock()
	for _, jb := range order {
		s.jobs[jb.id] = jb
		if jb.status == StatusQueued {
			pending = append(pending, jb)
			if s.inflight[jb.key] == nil {
				s.inflight[jb.key] = jb
			}
			continue
		}
		s.finished = append(s.finished, jb.id)
		for len(s.finished) > s.opts.JobRetention {
			delete(s.jobs, s.finished[0])
			copy(s.finished, s.finished[1:])
			s.finished = s.finished[:len(s.finished)-1]
		}
	}
	s.jmu.Unlock()
	return pending
}

// reenqueue pushes one replayed job into the queue, waiting out
// backpressure. If shutdown wins the race, the job finishes as
// cancelled — journaled, so the *next* restart sees it terminal.
func (s *Server) reenqueue(jb *job) {
	for {
		switch s.enqueue(jb) {
		case admitted:
			return
		case shuttingDown:
			jb.mu.Lock()
			jb.status = StatusCancelled
			jb.err = "daemon shut down before the replayed job could re-run"
			jb.mu.Unlock()
			s.cancelled.Inc()
			s.journalTerminal(jb, opCancelled, jb.err)
			close(jb.done)
			s.retire(jb)
			return
		case queueFull:
			time.Sleep(time.Millisecond)
		}
	}
}

// journalAccept write-ahead-logs one admission. An error means the
// job must not be acked (the caller refuses the submission): the
// write-ahead contract is exactly that nothing is promised that the
// journal does not hold.
func (s *Server) journalAccept(jb *job) error {
	if s.jl == nil {
		return nil
	}
	err := s.jl.append(journalRecord{Op: opAccept, ID: jb.id, Key: jb.key, Spec: jb.spec})
	if err != nil {
		s.journalErrs.Inc()
	}
	return err
}

// journalTerminal best-effort-logs a terminal transition. A lost
// terminal record is safe — replay re-enqueues the job and the
// recompute short-circuits on the stored result — so errors only
// count, they never fail the job.
func (s *Server) journalTerminal(jb *job, op, errMsg string) {
	if s.jl == nil {
		return
	}
	if err := s.jl.append(journalRecord{Op: op, ID: jb.id, Err: errMsg}); err != nil {
		s.journalErrs.Inc()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.queueDepth.Add(-1)
		s.runJob(jb)
	}
}

func (s *Server) runJob(jb *job) {
	// A replayed job whose result already reached the content-addressed
	// store before the crash (the store write precedes the terminal
	// journal record) completes without recomputation: the key
	// identifies the bytes exactly. Freshly admitted jobs skip this —
	// submit already checked the cache under the in-flight lock.
	if body, src := jb.cached(s.cache); src != cacheMiss {
		jb.mu.Lock()
		jb.status = StatusDone
		jb.body = body
		jb.mu.Unlock()
		s.completed.Inc()
		s.journalTerminal(jb, opDone, "")
		close(jb.done)
		s.retire(jb)
		return
	}

	jb.setStatus(StatusRunning)
	start := time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	body, err := s.runIsolated(ctx, jb.spec)
	// Read the deadline state before cancel(): afterwards ctx.Err() is
	// unconditionally non-nil and every failure would look cancelled.
	ctxErr := ctx.Err()
	cancel()
	s.jobSecs.ObserveDuration(time.Since(start))

	var op, errMsg string
	jb.mu.Lock()
	switch {
	case err == nil:
		jb.status = StatusDone
		jb.body = body
		// Store before the terminal record: if a crash lands between
		// the two, replay re-enqueues the job and the recompute
		// short-circuits on the stored bytes.
		s.cache.Put(jb.key, body)
		s.completed.Inc()
		op = opDone
	case ctxErr != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Deadline or shutdown beat the job; the computation itself
		// did not fail.
		jb.status = StatusCancelled
		jb.err = err.Error()
		s.cancelled.Inc()
		op, errMsg = opCancelled, jb.err
	default:
		jb.status = StatusFailed
		jb.err = err.Error()
		s.failed.Inc()
		op, errMsg = opFailed, jb.err
	}
	jb.mu.Unlock()
	s.journalTerminal(jb, op, errMsg)
	close(jb.done)
	s.retire(jb)
}

// runIsolated executes one job with panic isolation: a poisoned spec
// that panics the engine fails that job (the recovered value becomes
// its error, surfaced as HTTP 500 / status "failed") instead of
// killing the worker and, with it, the daemon. The stack is dropped
// deliberately — the panic value plus the job's content-addressed spec
// reproduce the crash offline.
func (s *Server) runIsolated(ctx context.Context, sp *Spec) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked.Inc()
			body, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	return s.run(ctx, sp)
}

// retire unregisters jb from the in-flight index (new identical
// submissions recompute unless the result was cached) and enforces the
// finished-job retention bound: beyond opts.JobRetention the oldest
// finished records — and the result bodies they hold — are dropped
// from the jobs map, so memory does not grow with jobs ever accepted.
func (s *Server) retire(jb *job) {
	s.jmu.Lock()
	if s.inflight[jb.key] == jb {
		delete(s.inflight, jb.key)
	}
	s.finished = append(s.finished, jb.id)
	for len(s.finished) > s.opts.JobRetention {
		delete(s.jobs, s.finished[0])
		copy(s.finished, s.finished[1:])
		s.finished = s.finished[:len(s.finished)-1]
	}
	s.jmu.Unlock()
}

// enqueue outcome.
type admission int

const (
	admitted admission = iota
	queueFull
	shuttingDown
)

func (s *Server) enqueue(jb *job) admission {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		return shuttingDown
	}
	select {
	case s.queue <- jb:
		s.queueDepth.Add(1)
		return admitted
	default:
		return queueFull
	}
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxSpecBytes bounds request bodies; scenario documents are small.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	s.submit(w, r, sp)
}

// chaosRequest is the POST /v1/chaos body: the campaign document plus
// the protocol-level deterministic inputs shared with Spec.
type chaosRequest struct {
	ChaosSpec
	Events int    `json:"events,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Wait   bool   `json:"wait,omitempty"`
}

// handleChaos is sugar for POST /v1/experiments with kind "chaos": it
// admits a chaos campaign through the same queue, cache and
// singleflight path as every other job kind.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req chaosRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid chaos spec: %v", err)
		return
	}
	cs := req.ChaosSpec
	s.submit(w, r, Spec{
		Kind:   "chaos",
		Events: req.Events,
		Seed:   req.Seed,
		Wait:   req.Wait,
		Chaos:  &cs,
	})
}

// submit drives an admission end to end: normalize → content address →
// cache → singleflight → queue, answering with the cached body, a 202,
// or the job's terminal state.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, sp Spec) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	if err := sp.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := sp.key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if body, src := s.cache.Get(key); src != cacheMiss {
		writeResult(w, key, src, body)
		return
	}

	// Singleflight: a second request for a key that is already queued
	// or running attaches to the existing job instead of recomputing —
	// the content address guarantees the results would be identical.
	s.jmu.Lock()
	if existing := s.inflight[key]; existing != nil {
		s.jmu.Unlock()
		s.coalesced.Inc()
		s.respond(w, r, existing, key, sp.Wait)
		return
	}
	jb := &job{
		id:     fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:    key,
		spec:   &sp,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
	// Write-ahead: the accept record must be on disk before the job is
	// acked. Holding jmu keeps journal order consistent with admission
	// order. A journal that cannot take the record refuses the
	// submission — promising work the journal does not hold is exactly
	// the crash-unsafety this layer removes.
	if err := s.journalAccept(jb); err != nil {
		s.jmu.Unlock()
		s.unavailable(w)
		return
	}
	// Enqueue while holding jmu so the inflight check-then-register is
	// atomic (enqueue only takes qmu, and never the other way around).
	adm := s.enqueue(jb)
	if adm == admitted {
		s.jobs[jb.id] = jb
		s.inflight[key] = jb
	}
	s.jmu.Unlock()
	switch adm {
	case queueFull:
		// The accept was journaled but the job never ran; close it out
		// so replay does not resurrect a refused submission.
		s.journalTerminal(jb, opCancelled, "refused: queue full")
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, "job queue full (%d pending)", s.opts.QueueSize)
		return
	case shuttingDown:
		s.journalTerminal(jb, opCancelled, "refused: shutting down")
		s.unavailable(w)
		return
	}
	s.accepted.Inc()
	s.respond(w, r, jb, key, sp.Wait)
}

// respond completes a submission against jb: a 202 + Location for
// fire-and-forget, or (wait) the job's terminal state as 200/504/500.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, jb *job, key string, wait bool) {
	if !wait {
		w.Header().Set("Location", "/v1/jobs/"+jb.id)
		writeJSON(w, http.StatusAccepted, jb.view(false))
		return
	}
	select {
	case <-jb.done:
	case <-r.Context().Done():
		// Client gave up; the job keeps running and fills the cache.
		return
	}
	jb.mu.Lock()
	status, body, errMsg := jb.status, jb.body, jb.err
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		writeResult(w, key, "miss", body)
	case StatusCancelled:
		httpError(w, http.StatusGatewayTimeout, "job %s cancelled: %s", jb.id, errMsg)
	default:
		httpError(w, http.StatusInternalServerError, "job %s failed: %s", jb.id, errMsg)
	}
}

// handleJob serves job status. Finished jobs are pollable until they
// age out of the retention window (Options.JobRetention), after which
// the id is a 404 like any unknown id.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jmu.Lock()
	jb, ok := s.jobs[r.PathValue("id")]
	s.jmu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	v := jb.view(true)
	// A job replayed as "done" holds no body in memory — the journal
	// records only the transition. Fetch it from the durable store by
	// content address (promoting it into the memory tier).
	if v.Status == StatusDone && len(v.Result) == 0 {
		if body, src := s.cache.Get(jb.key); src != cacheMiss {
			v.Result = json.RawMessage(body)
		}
	}
	writeJSON(w, http.StatusOK, v)
}

// handleHealth is *liveness*: it answers 200 as long as the process
// can serve HTTP — including while draining or replaying the journal —
// so a supervisor does not mistake an orderly restart for a crash and
// SIGKILL a daemon that is busy compacting. Readiness lives on
// /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      s.phase(),
		"queue_depth": s.queueDepth.Value(),
		"cached":      s.cache.Len(),
		"journal":     s.journalStatus(),
		"store":       s.storeStatus(),
	})
}

// handleReady is *readiness*: 503 while the daemon is not accepting
// work — during journal replay at startup and during drain — so a load
// balancer routes around a restarting instance without its liveness
// probe ever failing.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	phase := s.phase()
	code := http.StatusOK
	if phase != "ok" {
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	}
	writeJSON(w, code, map[string]any{
		"ready":  phase == "ok",
		"status": phase,
	})
}

// phase reports the daemon's lifecycle phase: "replaying" (journal
// backlog not yet re-enqueued), "draining" (shutdown in progress) or
// "ok".
func (s *Server) phase() string {
	switch {
	case s.draining.Load():
		return "draining"
	case !s.ready.Load():
		return "replaying"
	default:
		return "ok"
	}
}

// Ready reports whether the daemon is accepting work (journal replay
// complete, not draining).
func (s *Server) Ready() bool { return s.phase() == "ok" }

func (s *Server) journalStatus() map[string]any {
	st := map[string]any{"enabled": s.jl != nil}
	if s.jl != nil {
		st["replayed_jobs"] = s.replayed.Value()
		st["torn_tail"] = s.tornTail.Value()
		st["append_errors"] = s.journalErrs.Value()
	}
	return st
}

func (s *Server) storeStatus() map[string]any {
	st := map[string]any{"enabled": s.store != nil}
	if s.store != nil {
		st["entries"] = s.store.Len()
		st["bytes"] = s.store.Bytes()
		st["corruption"] = s.reg.Counter("repro_store_corruption_total").Value()
	}
	return st
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.reg.WriteTo(w)
}

// Shutdown drains the daemon gracefully: new submissions are refused
// (503), queued and running jobs finish, workers exit. If ctx expires
// first, in-flight jobs are cancelled (they finish as "cancelled") and
// Shutdown returns ctx.Err() once the workers are down.
//
// A *clean* drain additionally compacts the journal: every accepted
// job is terminal and its result durable in the store, so the journal
// holds no live state and the next start replays nothing. A forced
// drain skips compaction — the cancelled jobs' terminal records are
// already appended, so replay still sees them terminal.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		err = ctx.Err()
	}
	if s.jl != nil {
		if err == nil {
			_ = s.jl.compact(nil)
		}
		_ = s.jl.close()
	}
	return err
}

// execute runs one normalized spec to its encoded result. Experiment
// internal parallelism is forced to 1: the daemon parallelises across
// jobs, and Workers never belongs in a cache key anyway (it cannot
// change results — see internal/runner).
func execute(ctx context.Context, sp *Spec) ([]byte, error) {
	switch sp.Kind {
	case "fig6a", "fig6b", "fig6c":
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = sp.Events
		cfg.Seed = sp.Seed
		cfg.Workers = 1
		r, err := experiments.Fig6Ctx(ctx, experiments.Fig6Variant(sp.Kind[4]), cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeFig6(r)
	case "fig7":
		cfg := experiments.DefaultFig7()
		cfg.ECU.Events = sp.Events
		cfg.ECU.Seed = sp.Seed
		cfg.Window = sp.Window
		cfg.Workers = 1
		r, err := experiments.Fig7Ctx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeFig7(r)
	case "overhead":
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = sp.Events
		cfg.Seed = sp.Seed
		cfg.Workers = 1
		r, err := experiments.OverheadCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeOverhead(r)
	case "scenario":
		sc, err := sp.Scenario.Scenario()
		if err != nil {
			return nil, err
		}
		res, err := engine.RunManyCtx(ctx, []core.Scenario{sc}, 1)
		if err != nil {
			return nil, err
		}
		return report.EncodeResult(res[0])
	case "chaos":
		r, err := faults.Run(ctx, faults.Config{
			Faults:         sp.Chaos.Faults,
			Intensities:    sp.Chaos.Intensities,
			Events:         sp.Events,
			Seed:           sp.Seed,
			Workers:        1,
			DisableMonitor: sp.Chaos.DisableMonitor,
		})
		if err != nil {
			return nil, err
		}
		return report.EncodeChaos(r)
	default:
		return nil, fmt.Errorf("serve: unknown kind %q", sp.Kind)
	}
}

// unavailable refuses a submission during drain/shutdown. Like the
// 429 backpressure path, the 503 carries Retry-After so a well-behaved
// client (internal/serve/client) backs off instead of hammering a
// restarting daemon.
func (s *Server) unavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	httpError(w, http.StatusServiceUnavailable, "server is shutting down")
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeResult(w http.ResponseWriter, key, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Job-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, _ := json.MarshalIndent(v, "", "  ")
	_, _ = w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
