package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
)

// Options configures a Server. Zero values select the defaults noted
// per field.
type Options struct {
	// Workers is the size of the shared worker pool; 0 selects
	// runner.Default() (REPRO_WORKERS or GOMAXPROCS).
	Workers int
	// QueueSize bounds the FIFO job queue; admission beyond it is
	// refused with 429 + Retry-After. 0 = 64.
	QueueSize int
	// CacheSize bounds the result cache (entries). 0 = 128.
	CacheSize int
	// JobTimeout is the per-job deadline; an expired job is cancelled
	// and reported as 504. 0 = 5 minutes.
	JobTimeout time.Duration
	// JobRetention bounds how many finished jobs stay pollable via
	// GET /v1/jobs/{id}; beyond it the oldest finished records (and
	// their result bodies) are dropped and polling them is a 404, so
	// daemon memory is bounded by retention + cache, not by jobs ever
	// accepted. 0 = 256.
	JobRetention int
	// RetryAfter is the backoff advice on 429 responses. 0 = 1s.
	RetryAfter time.Duration
	// Registry receives the server metrics; nil = metrics.Default().
	Registry *metrics.Registry
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = runner.Default()
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 64
	}
	if o.CacheSize <= 0 {
		o.CacheSize = 128
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 5 * time.Minute
	}
	if o.JobRetention <= 0 {
		o.JobRetention = 256
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
}

// Job states, as reported by GET /v1/jobs/{id}.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled" // deadline exceeded or shutdown
)

// job is one admitted experiment. done closes exactly once, after
// status/body/err reached their final values; waiters (blocking POSTs,
// pollers) read them only after done.
type job struct {
	id   string
	key  string
	spec *Spec
	done chan struct{}

	mu     sync.Mutex
	status string
	body   []byte
	err    string
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

func (j *job) view(includeResult bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.id, Status: j.status, Key: j.key, Error: j.err}
	if includeResult && j.status == StatusDone {
		v.Result = json.RawMessage(j.body)
	}
	return v
}

// jobView is the GET /v1/jobs/{id} response body.
type jobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Key    string          `json:"key"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Server is the simulation daemon: a bounded queue feeding a worker
// pool, fronted by a content-addressed result cache.
type Server struct {
	opts  Options
	reg   *metrics.Registry
	cache *cache

	qmu    sync.Mutex // guards queue sends vs close on shutdown
	queue  chan *job
	closed bool

	jmu      sync.Mutex
	jobs     map[string]*job
	inflight map[string]*job // key → queued/running job (singleflight)
	finished []string        // finished job ids, oldest first (retention)

	nextID   atomic.Uint64
	draining atomic.Bool
	wg       sync.WaitGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// run executes one job; overridable in tests for deterministic
	// blocking/timeout behaviour. The default dispatches on Kind.
	run func(ctx context.Context, sp *Spec) ([]byte, error)

	accepted   *metrics.Counter
	rejected   *metrics.Counter
	completed  *metrics.Counter
	failed     *metrics.Counter
	cancelled  *metrics.Counter
	coalesced  *metrics.Counter
	panicked   *metrics.Counter
	queueDepth *metrics.Gauge
	jobSecs    *metrics.Histogram
}

// New starts a Server: opts.Workers goroutines begin draining the
// queue immediately. Stop it with Shutdown.
func New(opts Options) *Server {
	opts.fill()
	s := &Server{
		opts:       opts,
		reg:        opts.Registry,
		cache:      newCache(opts.CacheSize, opts.Registry),
		queue:      make(chan *job, opts.QueueSize),
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		accepted:   opts.Registry.Counter("repro_server_jobs_accepted_total"),
		rejected:   opts.Registry.Counter("repro_server_jobs_rejected_total"),
		completed:  opts.Registry.Counter("repro_server_jobs_completed_total"),
		failed:     opts.Registry.Counter("repro_server_jobs_failed_total"),
		cancelled:  opts.Registry.Counter("repro_server_jobs_cancelled_total"),
		coalesced:  opts.Registry.Counter("repro_server_jobs_coalesced_total"),
		panicked:   opts.Registry.Counter("repro_server_jobs_panicked_total"),
		queueDepth: opts.Registry.Gauge("repro_server_queue_depth"),
		jobSecs:    opts.Registry.Histogram("repro_server_job_seconds", nil),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.run = execute
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.wg.Done()
	for jb := range s.queue {
		s.queueDepth.Add(-1)
		s.runJob(jb)
	}
}

func (s *Server) runJob(jb *job) {
	jb.setStatus(StatusRunning)
	start := time.Now()
	ctx, cancel := context.WithTimeout(s.baseCtx, s.opts.JobTimeout)
	body, err := s.runIsolated(ctx, jb.spec)
	// Read the deadline state before cancel(): afterwards ctx.Err() is
	// unconditionally non-nil and every failure would look cancelled.
	ctxErr := ctx.Err()
	cancel()
	s.jobSecs.ObserveDuration(time.Since(start))

	jb.mu.Lock()
	switch {
	case err == nil:
		jb.status = StatusDone
		jb.body = body
		s.cache.Put(jb.key, body)
		s.completed.Inc()
	case ctxErr != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		// Deadline or shutdown beat the job; the computation itself
		// did not fail.
		jb.status = StatusCancelled
		jb.err = err.Error()
		s.cancelled.Inc()
	default:
		jb.status = StatusFailed
		jb.err = err.Error()
		s.failed.Inc()
	}
	jb.mu.Unlock()
	close(jb.done)
	s.retire(jb)
}

// runIsolated executes one job with panic isolation: a poisoned spec
// that panics the engine fails that job (the recovered value becomes
// its error, surfaced as HTTP 500 / status "failed") instead of
// killing the worker and, with it, the daemon. The stack is dropped
// deliberately — the panic value plus the job's content-addressed spec
// reproduce the crash offline.
func (s *Server) runIsolated(ctx context.Context, sp *Spec) (body []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panicked.Inc()
			body, err = nil, fmt.Errorf("job panicked: %v", r)
		}
	}()
	return s.run(ctx, sp)
}

// retire unregisters jb from the in-flight index (new identical
// submissions recompute unless the result was cached) and enforces the
// finished-job retention bound: beyond opts.JobRetention the oldest
// finished records — and the result bodies they hold — are dropped
// from the jobs map, so memory does not grow with jobs ever accepted.
func (s *Server) retire(jb *job) {
	s.jmu.Lock()
	if s.inflight[jb.key] == jb {
		delete(s.inflight, jb.key)
	}
	s.finished = append(s.finished, jb.id)
	for len(s.finished) > s.opts.JobRetention {
		delete(s.jobs, s.finished[0])
		copy(s.finished, s.finished[1:])
		s.finished = s.finished[:len(s.finished)-1]
	}
	s.jmu.Unlock()
}

// enqueue outcome.
type admission int

const (
	admitted admission = iota
	queueFull
	shuttingDown
)

func (s *Server) enqueue(jb *job) admission {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.closed {
		return shuttingDown
	}
	select {
	case s.queue <- jb:
		s.queueDepth.Add(1)
		return admitted
	default:
		return queueFull
	}
}

// Handler returns the daemon's HTTP interface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("POST /v1/chaos", s.handleChaos)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// maxSpecBytes bounds request bodies; scenario documents are small.
const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	s.submit(w, r, sp)
}

// chaosRequest is the POST /v1/chaos body: the campaign document plus
// the protocol-level deterministic inputs shared with Spec.
type chaosRequest struct {
	ChaosSpec
	Events int    `json:"events,omitempty"`
	Seed   uint64 `json:"seed,omitempty"`
	Wait   bool   `json:"wait,omitempty"`
}

// handleChaos is sugar for POST /v1/experiments with kind "chaos": it
// admits a chaos campaign through the same queue, cache and
// singleflight path as every other job kind.
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	var req chaosRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid chaos spec: %v", err)
		return
	}
	cs := req.ChaosSpec
	s.submit(w, r, Spec{
		Kind:   "chaos",
		Events: req.Events,
		Seed:   req.Seed,
		Wait:   req.Wait,
		Chaos:  &cs,
	})
}

// submit drives an admission end to end: normalize → content address →
// cache → singleflight → queue, answering with the cached body, a 202,
// or the job's terminal state.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, sp Spec) {
	if s.draining.Load() {
		s.unavailable(w)
		return
	}
	if err := sp.normalize(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key, err := sp.key()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	if body, ok := s.cache.Get(key); ok {
		writeResult(w, key, "hit", body)
		return
	}

	// Singleflight: a second request for a key that is already queued
	// or running attaches to the existing job instead of recomputing —
	// the content address guarantees the results would be identical.
	s.jmu.Lock()
	if existing := s.inflight[key]; existing != nil {
		s.jmu.Unlock()
		s.coalesced.Inc()
		s.respond(w, r, existing, key, sp.Wait)
		return
	}
	jb := &job{
		id:     fmt.Sprintf("j%08d", s.nextID.Add(1)),
		key:    key,
		spec:   &sp,
		done:   make(chan struct{}),
		status: StatusQueued,
	}
	// Enqueue while holding jmu so the inflight check-then-register is
	// atomic (enqueue only takes qmu, and never the other way around).
	adm := s.enqueue(jb)
	if adm == admitted {
		s.jobs[jb.id] = jb
		s.inflight[key] = jb
	}
	s.jmu.Unlock()
	switch adm {
	case queueFull:
		s.rejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
		httpError(w, http.StatusTooManyRequests, "job queue full (%d pending)", s.opts.QueueSize)
		return
	case shuttingDown:
		s.unavailable(w)
		return
	}
	s.accepted.Inc()
	s.respond(w, r, jb, key, sp.Wait)
}

// respond completes a submission against jb: a 202 + Location for
// fire-and-forget, or (wait) the job's terminal state as 200/504/500.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, jb *job, key string, wait bool) {
	if !wait {
		w.Header().Set("Location", "/v1/jobs/"+jb.id)
		writeJSON(w, http.StatusAccepted, jb.view(false))
		return
	}
	select {
	case <-jb.done:
	case <-r.Context().Done():
		// Client gave up; the job keeps running and fills the cache.
		return
	}
	jb.mu.Lock()
	status, body, errMsg := jb.status, jb.body, jb.err
	jb.mu.Unlock()
	switch status {
	case StatusDone:
		writeResult(w, key, "miss", body)
	case StatusCancelled:
		httpError(w, http.StatusGatewayTimeout, "job %s cancelled: %s", jb.id, errMsg)
	default:
		httpError(w, http.StatusInternalServerError, "job %s failed: %s", jb.id, errMsg)
	}
}

// handleJob serves job status. Finished jobs are pollable until they
// age out of the retention window (Options.JobRetention), after which
// the id is a 404 like any unknown id.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jmu.Lock()
	jb, ok := s.jobs[r.PathValue("id")]
	s.jmu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, jb.view(true))
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":      status,
		"queue_depth": s.queueDepth.Value(),
		"cached":      s.cache.Len(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.reg.WriteTo(w)
}

// Shutdown drains the daemon gracefully: new submissions are refused
// (503), queued and running jobs finish, workers exit. If ctx expires
// first, in-flight jobs are cancelled (they finish as "cancelled") and
// Shutdown returns ctx.Err() once the workers are down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		return ctx.Err()
	}
}

// execute runs one normalized spec to its encoded result. Experiment
// internal parallelism is forced to 1: the daemon parallelises across
// jobs, and Workers never belongs in a cache key anyway (it cannot
// change results — see internal/runner).
func execute(ctx context.Context, sp *Spec) ([]byte, error) {
	switch sp.Kind {
	case "fig6a", "fig6b", "fig6c":
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = sp.Events
		cfg.Seed = sp.Seed
		cfg.Workers = 1
		r, err := experiments.Fig6Ctx(ctx, experiments.Fig6Variant(sp.Kind[4]), cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeFig6(r)
	case "fig7":
		cfg := experiments.DefaultFig7()
		cfg.ECU.Events = sp.Events
		cfg.ECU.Seed = sp.Seed
		cfg.Window = sp.Window
		cfg.Workers = 1
		r, err := experiments.Fig7Ctx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeFig7(r)
	case "overhead":
		cfg := experiments.DefaultFig6()
		cfg.EventsPerLoad = sp.Events
		cfg.Seed = sp.Seed
		cfg.Workers = 1
		r, err := experiments.OverheadCtx(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return report.EncodeOverhead(r)
	case "scenario":
		sc, err := sp.Scenario.Scenario()
		if err != nil {
			return nil, err
		}
		res, err := core.RunManyCtx(ctx, []core.Scenario{sc}, 1)
		if err != nil {
			return nil, err
		}
		return report.EncodeResult(res[0])
	case "chaos":
		r, err := faults.Run(ctx, faults.Config{
			Faults:         sp.Chaos.Faults,
			Intensities:    sp.Chaos.Intensities,
			Events:         sp.Events,
			Seed:           sp.Seed,
			Workers:        1,
			DisableMonitor: sp.Chaos.DisableMonitor,
		})
		if err != nil {
			return nil, err
		}
		return report.EncodeChaos(r)
	default:
		return nil, fmt.Errorf("serve: unknown kind %q", sp.Kind)
	}
}

// unavailable refuses a submission during drain/shutdown. Like the
// 429 backpressure path, the 503 carries Retry-After so a well-behaved
// client (internal/serve/client) backs off instead of hammering a
// restarting daemon.
func (s *Server) unavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.opts.RetryAfter)))
	httpError(w, http.StatusServiceUnavailable, "server is shutting down")
}

func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeResult(w http.ResponseWriter, key, cacheState string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Job-Key", key)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	buf, _ := json.MarshalIndent(v, "", "  ")
	_, _ = w.Write(append(buf, '\n'))
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
