// Package serve exposes the experiment engine as an HTTP daemon:
// simulation as a service. Jobs are admitted through a bounded FIFO
// queue with backpressure, executed on a shared worker pool, and their
// encoded results stored in a content-addressed LRU cache.
//
// Content addressing leans on two repo-wide invariants: simulations
// are deterministic (identical spec + seed ⇒ identical results, see
// internal/rng and internal/runner), and result encodings are stable
// (internal/report). A cache key therefore identifies the response
// bytes exactly — a hit is *the* answer, not an approximation — so the
// daemon can serve repeated requests without recomputation and clients
// can compare bodies byte for byte.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"

	"repro/internal/campaign"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/workload"
)

// Spec is the request body of POST /v1/experiments: which experiment
// to run and with which deterministic inputs. Wait only changes the
// response protocol (block vs 202 + poll), never the computation, so
// it is excluded from the cache key.
type Spec struct {
	// Kind selects the computation: "fig6a", "fig6b", "fig6c",
	// "fig7", "overhead", or "scenario".
	Kind string `json:"kind"`
	// Events overrides the experiment's event count (fig6*: IRQs per
	// load; fig7: ECU trace activations; overhead: IRQs per load).
	// 0 selects the paper's default.
	Events int `json:"events,omitempty"`
	// Seed overrides the workload seed; 0 selects the default.
	Seed uint64 `json:"seed,omitempty"`
	// Window is the fig7 sliding-average window; 0 selects the
	// default. Only valid for kind "fig7".
	Window int `json:"window,omitempty"`
	// Scenario is the full system description for kind "scenario",
	// in the cmd/rthvsim configuration schema.
	Scenario *config.File `json:"scenario,omitempty"`
	// Chaos is the campaign document for kind "chaos" (also reachable
	// as POST /v1/chaos). Events and Seed above parameterise the
	// campaign; nil selects the default campaign.
	Chaos *ChaosSpec `json:"chaos,omitempty"`
	// Cell is the cell document for kind "cell": one expanded campaign
	// cell (internal/campaign). The document is self-contained — Events,
	// Seed and Window must stay zero — so identical cells from different
	// campaigns share one content address.
	Cell *campaign.CellSpec `json:"cell,omitempty"`
	// Wait blocks the POST until the result is ready instead of
	// returning 202 + a job to poll.
	Wait bool `json:"wait,omitempty"`
}

// ChaosSpec selects the fault-injection campaign for kind "chaos":
// which adversarial IRQ models to aim at the reference system, at
// which intensities, and whether to ablate the activation monitor
// (internal/faults). Order matters — the cell index derives each run's
// rng stream — so normalize fills defaults but never reorders.
type ChaosSpec struct {
	// Faults lists fault model names (internal/faults registry); empty
	// selects every registered model.
	Faults []string `json:"faults,omitempty"`
	// Intensities in (0, 1]; empty selects 0.25, 0.5, 1.0.
	Intensities []float64 `json:"intensities,omitempty"`
	// DisableMonitor runs the campaign with the monitor's verdict
	// discarded — the oracle-regression ablation. Such runs are
	// expected to fail their invariants.
	DisableMonitor bool `json:"disable_monitor,omitempty"`
}

// normalize validates sp and fills kind-specific defaults so every
// spec that names the same computation reduces to the same canonical
// form — the precondition for exact cache keys.
func (sp *Spec) normalize() error {
	if sp.Kind != "chaos" && sp.Chaos != nil {
		return fmt.Errorf("serve: kind %q takes no chaos document", sp.Kind)
	}
	if sp.Kind != "cell" && sp.Cell != nil {
		return fmt.Errorf("serve: kind %q takes no cell document", sp.Kind)
	}
	switch sp.Kind {
	case "fig6a", "fig6b", "fig6c", "overhead":
		if sp.Scenario != nil {
			return fmt.Errorf("serve: kind %q takes no scenario document", sp.Kind)
		}
		if sp.Window != 0 {
			return fmt.Errorf("serve: window only applies to kind \"fig7\"")
		}
		if sp.Events < 0 {
			return fmt.Errorf("serve: events must be non-negative")
		}
		def := experiments.DefaultFig6()
		if sp.Events == 0 {
			sp.Events = def.EventsPerLoad
		}
		if sp.Seed == 0 {
			sp.Seed = def.Seed
		}
	case "fig7":
		if sp.Scenario != nil {
			return fmt.Errorf("serve: kind %q takes no scenario document", sp.Kind)
		}
		if sp.Events < 0 || sp.Window < 0 {
			return fmt.Errorf("serve: events and window must be non-negative")
		}
		ecu := workload.DefaultECU()
		if sp.Events == 0 {
			sp.Events = ecu.Events
		}
		if sp.Seed == 0 {
			sp.Seed = ecu.Seed
		}
		if sp.Window == 0 {
			sp.Window = experiments.DefaultFig7().Window
		}
	case "scenario":
		if sp.Scenario == nil {
			return fmt.Errorf("serve: kind \"scenario\" requires a scenario document")
		}
		if sp.Events != 0 || sp.Seed != 0 || sp.Window != 0 {
			return fmt.Errorf("serve: events, seed and window are properties of the scenario document")
		}
	case "chaos":
		if sp.Scenario != nil {
			return fmt.Errorf("serve: kind %q takes no scenario document", sp.Kind)
		}
		if sp.Window != 0 {
			return fmt.Errorf("serve: window only applies to kind \"fig7\"")
		}
		if sp.Events < 0 {
			return fmt.Errorf("serve: events must be non-negative")
		}
		if sp.Chaos == nil {
			sp.Chaos = &ChaosSpec{}
		}
		def := faults.DefaultConfig()
		if sp.Events == 0 {
			sp.Events = def.Events
		}
		if sp.Seed == 0 {
			sp.Seed = def.Seed
		}
		if len(sp.Chaos.Faults) == 0 {
			sp.Chaos.Faults = faults.Names()
		}
		for _, f := range sp.Chaos.Faults {
			if _, ok := faults.Lookup(f); !ok {
				return fmt.Errorf("serve: unknown fault model %q (have %v)", f, faults.Names())
			}
		}
		if len(sp.Chaos.Intensities) == 0 {
			sp.Chaos.Intensities = faults.DefaultIntensities()
		}
		for _, in := range sp.Chaos.Intensities {
			if in < 0 || in > 1 {
				return fmt.Errorf("serve: intensity %g outside [0, 1]", in)
			}
		}
	case "cell":
		if sp.Scenario != nil {
			return fmt.Errorf("serve: kind %q takes no scenario document", sp.Kind)
		}
		if sp.Cell == nil {
			return fmt.Errorf("serve: kind \"cell\" requires a cell document")
		}
		if sp.Events != 0 || sp.Seed != 0 || sp.Window != 0 {
			return fmt.Errorf("serve: events, seed and window are properties of the cell document")
		}
		if err := sp.Cell.Validate(); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	case "":
		return fmt.Errorf("serve: missing kind")
	default:
		return fmt.Errorf("serve: unknown kind %q", sp.Kind)
	}
	return nil
}

// jobKey is the canonical pre-image of a cache key. Struct
// marshalling fixes the field order; Code pins the implementation
// revision so a rebuilt daemon never serves results computed by
// different code.
type jobKey struct {
	V        int       `json:"v"`
	Code     string    `json:"code"`
	Kind     string    `json:"kind"`
	Events   int       `json:"events"`
	Seed     uint64    `json:"seed"`
	Window   int       `json:"window"`
	Scenario string    `json:"scenario,omitempty"` // core.Fingerprint of the built scenario
	Chaos    *chaosKey `json:"chaos,omitempty"`    // normalized campaign document
	// Cell enters the key verbatim: the document is already canonical
	// (all fields explicit after validation) and struct marshalling
	// fixes the order.
	Cell *campaign.CellSpec `json:"cell,omitempty"`
}

// chaosKey is the campaign part of a chaos job's cache-key pre-image.
// Fault and intensity order is semantic (it fixes each cell's rng
// stream), so the slices enter the key verbatim.
type chaosKey struct {
	Faults         []string  `json:"faults"`
	Intensities    []float64 `json:"intensities"`
	DisableMonitor bool      `json:"disable_monitor"`
}

// keyVersion bumps whenever the key schema or the result encodings
// change incompatibly.
const keyVersion = 1

// key reduces a normalized spec to its content address: the hex
// SHA-256 of the canonical jobKey document. For kind "scenario" the
// document is built and fingerprinted (via core.CanonicalJSON), so
// two syntactically different config files describing the same system
// share one cache entry.
func (sp *Spec) key() (string, error) {
	k := jobKey{
		V:      keyVersion,
		Code:   codeVersion,
		Kind:   sp.Kind,
		Events: sp.Events,
		Seed:   sp.Seed,
		Window: sp.Window,
	}
	if sp.Kind == "scenario" {
		sc, err := sp.Scenario.Scenario()
		if err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		fp, err := core.Fingerprint(sc)
		if err != nil {
			return "", fmt.Errorf("serve: %w", err)
		}
		k.Scenario = fp
	}
	if sp.Kind == "chaos" {
		k.Chaos = &chaosKey{
			Faults:         sp.Chaos.Faults,
			Intensities:    sp.Chaos.Intensities,
			DisableMonitor: sp.Chaos.DisableMonitor,
		}
	}
	if sp.Kind == "cell" {
		k.Cell = sp.Cell
	}
	buf, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("repro/job/v1\n"))
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// campaignKey reduces a normalized campaign generator spec to its
// content address. Campaigns are content-addressed like jobs: the final
// aggregate is stored under this key, so resubmitting a finished
// campaign — or resuming a SIGKILLed one — short-circuits on the stored
// bytes.
func campaignKey(sp *campaign.Spec) (string, error) {
	k := struct {
		V    int            `json:"v"`
		Code string         `json:"code"`
		Camp *campaign.Spec `json:"camp"`
	}{V: keyVersion, Code: codeVersion, Camp: sp}
	buf, err := json.Marshal(k)
	if err != nil {
		return "", fmt.Errorf("serve: %w", err)
	}
	h := sha256.New()
	h.Write([]byte("repro/campaign/v1\n"))
	h.Write(buf)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// codeVersion identifies the running implementation: the VCS revision
// when built from a checkout, "dev" otherwise (e.g. go test binaries).
var codeVersion = func() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	return "dev"
}()
