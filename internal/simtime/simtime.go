// Package simtime provides the time base of the hypervisor simulation.
//
// The paper's evaluation platform is an ARM926ej-s clocked at 200 MHz, so
// the natural resolution for a faithful reproduction is one CPU cycle.
// Time and Duration are integer cycle counts; at 200 MHz one microsecond
// is exactly 200 cycles, so every quantity the paper reports in µs is
// representable without rounding.
package simtime

import (
	"fmt"
	"math"
)

// ClockHz is the simulated CPU clock of the evaluation platform (§6).
const ClockHz = 200_000_000

// CyclesPerMicro is the number of CPU cycles per microsecond at ClockHz.
const CyclesPerMicro = ClockHz / 1_000_000

// Time is an absolute point in simulated time, in CPU cycles since the
// start of the simulation.
type Time int64

// Duration is a span of simulated time in CPU cycles.
type Duration int64

// Common durations.
const (
	Cycle       Duration = 1
	Microsecond Duration = CyclesPerMicro
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Infinity is a duration longer than any simulation horizon used in the
// experiments. It is safe to add to any in-range Time without overflow.
const Infinity Duration = math.MaxInt64 / 4

// Never is a Time later than any event in a simulation.
const Never Time = math.MaxInt64 / 4

// Micros returns the duration of us microseconds.
func Micros(us int64) Duration { return Duration(us) * Microsecond }

// Millis returns the duration of ms milliseconds.
func Millis(ms int64) Duration { return Duration(ms) * Millisecond }

// Cycles returns the duration of n CPU cycles.
func Cycles(n int64) Duration { return Duration(n) }

// FromMicrosF converts a (possibly fractional) number of microseconds to a
// Duration, rounding to the nearest cycle.
func FromMicrosF(us float64) Duration {
	return Duration(math.Round(us * float64(CyclesPerMicro)))
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Micros returns the time since simulation start in microseconds,
// truncated toward zero.
func (t Time) Micros() int64 { return int64(t) / int64(Microsecond) }

// MicrosF returns the time since simulation start in fractional
// microseconds.
func (t Time) MicrosF() float64 { return float64(t) / float64(Microsecond) }

// String renders the time in microseconds.
func (t Time) String() string { return fmt.Sprintf("%.3fµs", t.MicrosF()) }

// Cycles returns the raw cycle count of d.
func (d Duration) Cycles() int64 { return int64(d) }

// Micros returns d in microseconds, truncated toward zero.
func (d Duration) Micros() int64 { return int64(d) / int64(Microsecond) }

// MicrosF returns d in fractional microseconds.
func (d Duration) MicrosF() float64 { return float64(d) / float64(Microsecond) }

// String renders the duration in microseconds.
func (d Duration) String() string { return fmt.Sprintf("%.3fµs", d.MicrosF()) }

// CeilDiv returns ⌈d / e⌉ for positive e. It is the building block of the
// interference terms (eqs. 8 and 14 of the paper), which are all of the
// form ⌈Δt / T⌉ · C.
func CeilDiv(d, e Duration) int64 {
	if e <= 0 {
		panic("simtime: CeilDiv by non-positive duration")
	}
	if d <= 0 {
		return 0
	}
	return (int64(d) + int64(e) - 1) / int64(e)
}

// Min returns the smaller of a and b.
func Min(a, b Duration) Duration {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// MinT returns the earlier of a and b.
func MinT(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxT returns the later of a and b.
func MaxT(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}
