package simtime

import (
	"testing"
	"testing/quick"
)

func TestConversionConstants(t *testing.T) {
	if CyclesPerMicro != 200 {
		t.Fatalf("CyclesPerMicro = %d, want 200 (200 MHz platform)", CyclesPerMicro)
	}
	if Microsecond != 200 {
		t.Fatalf("Microsecond = %d cycles, want 200", Microsecond)
	}
	if Millisecond != 200_000 {
		t.Fatalf("Millisecond = %d cycles, want 200000", Millisecond)
	}
	if Second != 200_000_000 {
		t.Fatalf("Second = %d cycles, want 2e8", Second)
	}
}

func TestMicrosRoundTrip(t *testing.T) {
	for _, us := range []int64{0, 1, 50, 6000, 14000, 123456} {
		d := Micros(us)
		if got := d.Micros(); got != us {
			t.Errorf("Micros(%d).Micros() = %d", us, got)
		}
		if got := d.MicrosF(); got != float64(us) {
			t.Errorf("Micros(%d).MicrosF() = %g", us, got)
		}
	}
}

func TestFromMicrosF(t *testing.T) {
	if got := FromMicrosF(1.0); got != 200 {
		t.Errorf("FromMicrosF(1.0) = %d, want 200", got)
	}
	if got := FromMicrosF(0.5); got != 100 {
		t.Errorf("FromMicrosF(0.5) = %d, want 100", got)
	}
	// Rounds to nearest cycle: 0.0024 µs = 0.48 cycles → 0.
	if got := FromMicrosF(0.0024); got != 0 {
		t.Errorf("FromMicrosF(0.0024) = %d, want 0", got)
	}
	if got := FromMicrosF(0.0026); got != 1 {
		t.Errorf("FromMicrosF(0.0026) = %d, want 1", got)
	}
}

func TestTimeArithmetic(t *testing.T) {
	t0 := Time(1000)
	if got := t0.Add(Micros(2)); got != Time(1400) {
		t.Errorf("Add: got %d", got)
	}
	if got := t0.Add(Micros(2)).Sub(t0); got != Micros(2) {
		t.Errorf("Sub: got %v", got)
	}
	if !t0.Before(t0 + 1) {
		t.Error("Before failed")
	}
	if !(t0 + 1).After(t0) {
		t.Error("After failed")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		d, e Duration
		want int64
	}{
		{0, 10, 0},
		{-5, 10, 0},
		{1, 10, 1},
		{10, 10, 1},
		{11, 10, 2},
		{14000, 14000, 1},
		{14001, 14000, 2},
	}
	for _, c := range cases {
		if got := CeilDiv(c.d, c.e); got != c.want {
			t.Errorf("CeilDiv(%d, %d) = %d, want %d", c.d, c.e, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnNonPositiveDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1, 0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestCeilDivProperty(t *testing.T) {
	// ⌈d/e⌉·e ≥ d and (⌈d/e⌉−1)·e < d for positive d, e.
	f := func(d, e int32) bool {
		dd, ee := Duration(d), Duration(e)
		if ee <= 0 || dd <= 0 {
			return true
		}
		q := CeilDiv(dd, ee)
		return q*int64(ee) >= int64(dd) && (q-1)*int64(ee) < int64(dd)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if MinT(3, 5) != 3 || MaxT(3, 5) != 5 {
		t.Error("MinT/MaxT broken")
	}
}

func TestStrings(t *testing.T) {
	if got := Micros(50).String(); got != "50.000µs" {
		t.Errorf("Duration.String() = %q", got)
	}
	if got := Time(Micros(50)).String(); got != "50.000µs" {
		t.Errorf("Time.String() = %q", got)
	}
}

func TestInfinityHeadroom(t *testing.T) {
	// Adding Infinity to a plausible simulation time must not overflow.
	end := Time(100 * 3600 * int64(Second)) // 100 hours
	if end.Add(Infinity) < end {
		t.Fatal("Infinity addition overflows")
	}
	if Never < end {
		t.Fatal("Never is not late enough")
	}
}
