// Package stats provides the small statistical toolkit the reproduction
// uses to validate *distributional* claims, not just moments: the paper
// asserts that delayed latencies are approximately uniform (Fig. 6a) and
// drives experiments with exponential interarrival times (§6.1). The
// Kolmogorov–Smirnov distance against the corresponding reference CDFs
// turns those statements into testable hypotheses.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the (population) variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CDF maps a value to its cumulative probability in [0, 1].
type CDF func(x float64) float64

// UniformCDF returns the CDF of the uniform distribution on [a, b].
func UniformCDF(a, b float64) CDF {
	return func(x float64) float64 {
		switch {
		case x <= a:
			return 0
		case x >= b:
			return 1
		default:
			return (x - a) / (b - a)
		}
	}
}

// ExponentialCDF returns the CDF of the exponential distribution with
// the given mean.
func ExponentialCDF(mean float64) CDF {
	return func(x float64) float64 {
		if x <= 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	}
}

// KSDistance returns the Kolmogorov–Smirnov statistic D_n: the maximum
// absolute difference between the empirical CDF of xs and the reference
// CDF. xs is not modified.
func KSDistance(xs []float64, ref CDF) (float64, error) {
	n := len(xs)
	if n == 0 {
		return 0, errors.New("stats: KS distance of empty sample")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := ref(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCritical returns the approximate critical value of the KS statistic
// at significance level alpha for sample size n (asymptotic formula
// c(α)·√(1/n) with c(0.05) ≈ 1.358, c(0.01) ≈ 1.628, c(0.001) ≈ 1.949).
func KSCritical(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, errors.New("stats: KS critical value needs n > 0")
	}
	var c float64
	switch {
	case alpha >= 0.10:
		c = 1.224
	case alpha >= 0.05:
		c = 1.358
	case alpha >= 0.01:
		c = 1.628
	default:
		c = 1.949
	}
	return c / math.Sqrt(float64(n)), nil
}

// KSTest reports whether the sample is consistent with the reference
// distribution at significance alpha (true = not rejected).
func KSTest(xs []float64, ref CDF, alpha float64) (bool, float64, error) {
	d, err := KSDistance(xs, ref)
	if err != nil {
		return false, 0, err
	}
	crit, err := KSCritical(len(xs), alpha)
	if err != nil {
		return false, 0, err
	}
	return d <= crit, d, nil
}

// ChiSquareUniform returns the chi-square statistic of xs against a
// uniform distribution over [a, b) with the given number of bins, and
// the degrees of freedom (bins−1). Values outside [a, b) are ignored.
func ChiSquareUniform(xs []float64, a, b float64, bins int) (float64, int, error) {
	if bins < 2 {
		return 0, 0, errors.New("stats: chi-square needs at least 2 bins")
	}
	if b <= a {
		return 0, 0, errors.New("stats: invalid interval")
	}
	counts := make([]int, bins)
	n := 0
	for _, x := range xs {
		if x < a || x >= b {
			continue
		}
		idx := int((x - a) / (b - a) * float64(bins))
		if idx == bins {
			idx--
		}
		counts[idx]++
		n++
	}
	if n == 0 {
		return 0, 0, errors.New("stats: no samples in interval")
	}
	expected := float64(n) / float64(bins)
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, bins - 1, nil
}
