package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Fatalf("mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-1.25) > 1e-12 {
		t.Fatalf("variance = %g", v)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs")
	}
	if s := StdDev(xs); math.Abs(s-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("stddev = %g", s)
	}
}

func TestUniformCDF(t *testing.T) {
	f := UniformCDF(10, 20)
	if f(5) != 0 || f(25) != 1 {
		t.Fatal("tails")
	}
	if f(15) != 0.5 {
		t.Fatalf("midpoint = %g", f(15))
	}
}

func TestExponentialCDF(t *testing.T) {
	f := ExponentialCDF(100)
	if f(-1) != 0 {
		t.Fatal("negative tail")
	}
	if got := f(100); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("f(mean) = %g", got)
	}
}

func TestKSAcceptsMatchingSamples(t *testing.T) {
	src := rng.New(3)
	const n = 5000
	uni := make([]float64, n)
	exp := make([]float64, n)
	for i := 0; i < n; i++ {
		uni[i] = 10 + 90*src.Float64()
		exp[i] = src.Exp(250)
	}
	ok, d, err := KSTest(uni, UniformCDF(10, 100), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("uniform sample rejected (D = %g)", d)
	}
	ok, d, err = KSTest(exp, ExponentialCDF(250), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("exponential sample rejected (D = %g)", d)
	}
}

func TestKSRejectsMismatchedSamples(t *testing.T) {
	src := rng.New(4)
	const n = 5000
	exp := make([]float64, n)
	for i := 0; i < n; i++ {
		exp[i] = src.Exp(100)
	}
	// An exponential sample is nowhere near uniform on [0, 500].
	ok, d, err := KSTest(exp, UniformCDF(0, 500), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("mismatched sample accepted (D = %g)", d)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSDistance(nil, UniformCDF(0, 1)); err == nil {
		t.Fatal("empty sample accepted")
	}
	if _, err := KSCritical(0, 0.05); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestChiSquareUniform(t *testing.T) {
	src := rng.New(5)
	const n = 8000
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = 100 * src.Float64()
	}
	chi2, dof, err := ChiSquareUniform(xs, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dof != 9 {
		t.Fatalf("dof = %d", dof)
	}
	// For 9 dof the 0.999 quantile is ≈ 27.9; a uniform sample should
	// be far below.
	if chi2 > 27.9 {
		t.Fatalf("chi2 = %g for a uniform sample", chi2)
	}
	// A skewed sample must blow past the same threshold.
	for i := 0; i < n; i++ {
		xs[i] = 100 * src.Float64() * src.Float64()
	}
	chi2, _, err = ChiSquareUniform(xs, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 < 27.9 {
		t.Fatalf("chi2 = %g for a skewed sample", chi2)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform([]float64{1}, 0, 10, 1); err == nil {
		t.Fatal("1 bin accepted")
	}
	if _, _, err := ChiSquareUniform([]float64{1}, 10, 0, 4); err == nil {
		t.Fatal("inverted interval accepted")
	}
	if _, _, err := ChiSquareUniform([]float64{-5}, 0, 10, 4); err == nil {
		t.Fatal("empty in-range sample accepted")
	}
}
