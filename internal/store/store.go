// Package store is a disk-backed content-addressed result store: the
// durable tier under the serve daemon's in-memory result cache. Keys
// are job content addresses (internal/serve Spec.key), so an entry can
// never be stale — the key identifies the response bytes exactly — and
// the only failure modes left are the ones disks actually have:
// partial writes and bit rot. Both are handled locally:
//
//   - Writes are atomic: the framed entry is written to a private file
//     under tmp/ and renamed into place, so a crash mid-Put leaves
//     either the complete old state or the complete new state, never a
//     half-written entry under a live key. With Options.Fsync the file
//     (and its directory) are synced before the rename is considered
//     durable.
//   - Reads verify: every entry carries its body's SHA-256 and length
//     in a fixed header. A mismatch — torn frame, flipped byte,
//     truncation — is *corruption*: the entry is moved to quarantine/
//     (kept for forensics, never served), the corruption counter is
//     bumped, and the caller sees a plain miss, which makes the daemon
//     recompute instead of serving bad bytes. Determinism guarantees
//     the recomputed body is byte-identical to what the entry held.
//
// The store is size-bounded: when the configured byte budget is
// exceeded, least-recently-used entries are deleted until it fits
// (recency is tracked in memory per process, seeded oldest-first from
// file modification times at Open).
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/metrics"
)

// Entry file framing: magic, body length, body SHA-256, body. The
// header is fixed-size so a truncated file is detected before any
// hashing happens.
const (
	magic      = "RST1"
	headerSize = len(magic) + 8 + sha256.Size
)

// Options configures a Store. Zero values select the defaults noted
// per field.
type Options struct {
	// MaxBytes bounds the total size of entry bodies on disk; beyond
	// it, least-recently-used entries are deleted. 0 = 256 MiB.
	MaxBytes int64
	// Fsync makes Put sync the entry file and its directory before
	// returning, trading write latency for power-loss durability.
	// Without it a Put is atomic (tmp+rename) but may be lost — never
	// torn — by a crash that beats the page cache.
	Fsync bool
	// Registry receives the store metrics; nil = metrics.Default().
	Registry *metrics.Registry
}

func (o *Options) fill() {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 256 << 20
	}
	if o.Registry == nil {
		o.Registry = metrics.Default()
	}
}

// Store is a disk-backed content-addressed blob store. Safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu    sync.Mutex
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key → element holding *entry
	bytes int64

	corruption *metrics.Counter
	evictions  *metrics.Counter
	puts       *metrics.Counter
	bytesDisk  *metrics.Gauge
	entries    *metrics.Gauge
}

type entry struct {
	key  string
	size int64 // body bytes (frame overhead excluded from the budget)
}

// Open creates (or reopens) a store rooted at dir. Existing entries
// are indexed by size and modification time — oldest become the first
// GC victims — but their checksums are verified lazily, on Get, so
// reopening a large store stays cheap.
func Open(dir string, opts Options) (*Store, error) {
	opts.fill()
	s := &Store{
		dir:        dir,
		opts:       opts,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		corruption: opts.Registry.Counter("repro_store_corruption_total"),
		evictions:  opts.Registry.Counter("repro_store_evictions_total"),
		puts:       opts.Registry.Counter("repro_store_puts_total"),
		bytesDisk:  opts.Registry.Gauge("repro_store_bytes_on_disk"),
		entries:    opts.Registry.Gauge("repro_store_entries"),
	}
	for _, sub := range []string{"results", "tmp", "quarantine"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// Stale tmp files are half-finished writes from a previous life;
	// their rename never happened, so they hold no live key.
	_ = removeAll(filepath.Join(dir, "tmp"))
	if err := s.index(); err != nil {
		return nil, err
	}
	return s, nil
}

// index scans results/ and seeds the in-memory recency list from file
// mtimes (oldest at the cold end).
func (s *Store) index() error {
	type found struct {
		key   string
		size  int64
		mtime int64
	}
	var all []found
	root := filepath.Join(s.dir, "results")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		size := info.Size() - int64(headerSize)
		if size < 0 {
			size = 0 // torn below header size; Get will quarantine it
		}
		all = append(all, found{d.Name(), size, info.ModTime().UnixNano()})
		return nil
	})
	if err != nil {
		return fmt.Errorf("store: indexing: %w", err)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime < all[j].mtime })
	for _, f := range all {
		s.items[f.key] = s.ll.PushFront(&entry{key: f.key, size: f.size})
		s.bytes += f.size
	}
	s.publish()
	return nil
}

func (s *Store) publish() {
	s.bytesDisk.Set(s.bytes)
	s.entries.Set(int64(s.ll.Len()))
}

func (s *Store) path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(s.dir, "results", shard, key)
}

// Get returns the stored body for key. A missing entry is (nil,
// false). A present-but-corrupt entry — bad magic, bad length, bad
// checksum — is quarantined, counted, and reported as a miss so the
// caller recomputes; corrupt bytes are never returned.
func (s *Store) Get(key string) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		s.forget(key)
		return nil, false
	}
	if err != nil {
		// Unreadable is indistinguishable from corrupt for a caller
		// that must never serve bad bytes.
		s.quarantine(key)
		return nil, false
	}
	body, ok := decode(raw)
	if !ok {
		s.quarantine(key)
		return nil, false
	}
	s.touch(key)
	return body, true
}

// GetFramed returns the stored entry for key still in its on-disk
// frame (magic|len|SHA-256|body), verified before it is handed out —
// the peer-serving path ships the frame verbatim so the fetching node
// re-checks the same checksum after the network hop. Corrupt entries
// quarantine exactly as in Get.
func (s *Store) GetFramed(key string) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(key))
	if errors.Is(err, fs.ErrNotExist) {
		s.forget(key)
		return nil, false
	}
	if err != nil {
		s.quarantine(key)
		return nil, false
	}
	if _, ok := decode(raw); !ok {
		s.quarantine(key)
		return nil, false
	}
	s.touch(key)
	return raw, true
}

// DecodeFrame validates one framed entry and returns its body. The
// frame is the on-disk entry format, exported so peers can ship
// entries verbatim and the receiver re-verifies the checksum over the
// network transfer too.
func DecodeFrame(raw []byte) ([]byte, bool) { return decode(raw) }

// EncodeFrame frames body exactly as the store writes it to disk.
func EncodeFrame(body []byte) []byte { return encode(body) }

// decode validates one framed entry and returns its body.
func decode(raw []byte) ([]byte, bool) {
	if len(raw) < headerSize || string(raw[:len(magic)]) != magic {
		return nil, false
	}
	n := binary.BigEndian.Uint64(raw[len(magic) : len(magic)+8])
	sum := raw[len(magic)+8 : headerSize]
	body := raw[headerSize:]
	if uint64(len(body)) != n {
		return nil, false
	}
	got := sha256.Sum256(body)
	if !bytes.Equal(got[:], sum) {
		return nil, false
	}
	return body, true
}

// encode frames body for disk.
func encode(body []byte) []byte {
	buf := make([]byte, headerSize+len(body))
	copy(buf, magic)
	binary.BigEndian.PutUint64(buf[len(magic):], uint64(len(body)))
	sum := sha256.Sum256(body)
	copy(buf[len(magic)+8:], sum[:])
	copy(buf[headerSize:], body)
	return buf
}

// Put stores body under key, atomically (tmp + rename). An existing
// entry is left untouched: content addressing means it already holds
// these bytes (and if it does not, the next Get will quarantine it).
// When the byte budget is exceeded, cold entries are deleted.
func (s *Store) Put(key string, body []byte) error {
	s.mu.Lock()
	_, exists := s.items[key]
	s.mu.Unlock()
	if exists {
		s.touch(key)
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Join(s.dir, "tmp"), key[:min(8, len(key))]+"-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(encode(body)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	dst := s.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Fsync {
		syncDir(filepath.Dir(dst))
	}
	s.puts.Inc()

	s.mu.Lock()
	if _, ok := s.items[key]; !ok {
		s.items[key] = s.ll.PushFront(&entry{key: key, size: int64(len(body))})
		s.bytes += int64(len(body))
	}
	var victims []string
	for s.bytes > s.opts.MaxBytes && s.ll.Len() > 1 {
		cold := s.ll.Back()
		e := cold.Value.(*entry)
		s.ll.Remove(cold)
		delete(s.items, e.key)
		s.bytes -= e.size
		victims = append(victims, e.key)
	}
	s.publish()
	s.mu.Unlock()
	for _, k := range victims {
		_ = os.Remove(s.path(k))
		s.evictions.Inc()
	}
	return nil
}

// touch bumps key's recency.
func (s *Store) touch(key string) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
	}
	s.mu.Unlock()
}

// forget drops key from the index without touching the disk (the file
// is already gone).
func (s *Store) forget(key string) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.bytes -= el.Value.(*entry).size
		s.ll.Remove(el)
		delete(s.items, key)
		s.publish()
	}
	s.mu.Unlock()
}

// quarantine moves key's entry file aside — never deleted, never
// served — and counts the corruption. The caller treats the key as a
// miss, so the result is recomputed and re-stored. Rename-first makes
// this idempotent under concurrent readers: os.Rename is atomic, so
// exactly one of N racing quarantines wins; the losers see ENOENT
// (someone already moved it) and only drop their index entry, so one
// corrupt file is counted exactly once.
func (s *Store) quarantine(key string) {
	dst := filepath.Join(s.dir, "quarantine", key+".corrupt")
	err := os.Rename(s.path(key), dst)
	switch {
	case err == nil:
		s.corruption.Inc()
	case errors.Is(err, fs.ErrNotExist):
		// Lost the race (or the file vanished): nothing to count.
	default:
		// Rename failed (e.g. EIO): deletion still prevents serving it.
		s.corruption.Inc()
		_ = os.Remove(s.path(key))
	}
	s.forget(key)
}

// Len reports the number of indexed entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Bytes reports the indexed body bytes on disk.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// removeAll empties dir without removing dir itself.
func removeAll(dir string) error {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		if err := os.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
			return err
		}
	}
	return nil
}
