package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/metrics"
)

func open(t *testing.T, dir string, opts Options) (*Store, *metrics.Registry) {
	t.Helper()
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, opts.Registry
}

func key(i int) string {
	return fmt.Sprintf("%064x", i)
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	body := []byte(`{"result": 42}`)
	if err := s.Put(key(1), body); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key(1))
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, body)
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("Get of unknown key reported a hit")
	}
	if s.Len() != 1 || s.Bytes() != int64(len(body)) {
		t.Fatalf("Len/Bytes = %d/%d, want 1/%d", s.Len(), s.Bytes(), len(body))
	}
}

// TestReopenServesExistingEntries is the durability point: entries put
// by one Store instance are served by the next one on the same dir.
func TestReopenServesExistingEntries(t *testing.T) {
	dir := t.TempDir()
	s1, _ := open(t, dir, Options{Fsync: true})
	body := []byte("survives the process")
	if err := s1.Put(key(7), body); err != nil {
		t.Fatal(err)
	}
	s2, reg := open(t, dir, Options{})
	got, ok := s2.Get(key(7))
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("reopened Get = %q, %v; want the original body", got, ok)
	}
	if g := reg.Gauge("repro_store_bytes_on_disk").Value(); g != int64(len(body)) {
		t.Fatalf("bytes_on_disk after reopen = %d, want %d", g, len(body))
	}
}

// TestCorruptionQuarantined: a flipped byte is detected by the
// checksum, the entry becomes a miss (so callers recompute), the file
// moves to quarantine/, and the corruption counter increments. A
// subsequent Put re-stores a good copy.
func TestCorruptionQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, reg := open(t, dir, Options{})
	body := []byte("precious deterministic bytes")
	if err := s.Put(key(3), body); err != nil {
		t.Fatal(err)
	}

	path := s.path(key(3))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff // flip a body byte
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(key(3)); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if got := reg.Counter("repro_store_corruption_total").Value(); got != 1 {
		t.Fatalf("corruption_total = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key(3)+".corrupt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still present under its live key")
	}

	// Recompute-and-restore: the key is writable again and verifies.
	if err := s.Put(key(3), body); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(key(3)); !ok || !bytes.Equal(got, body) {
		t.Fatal("re-stored entry not served")
	}
}

// TestTruncatedEntryQuarantined: a file torn below the header is
// corruption, not a crash.
func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, reg := open(t, dir, Options{})
	if err := s.Put(key(4), []byte("soon to be torn")); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(s.path(key(4)), int64(headerSize-5)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key(4)); ok {
		t.Fatal("torn entry served as a hit")
	}
	if got := reg.Counter("repro_store_corruption_total").Value(); got != 1 {
		t.Fatalf("corruption_total = %d, want 1", got)
	}
}

// TestGCEnforcesByteBudget: puts beyond MaxBytes delete the coldest
// entries, and the recency order honours Gets.
func TestGCEnforcesByteBudget(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{MaxBytes: 3 * 10})
	body := bytes.Repeat([]byte("x"), 10)
	for i := 1; i <= 3; i++ {
		if err := s.Put(key(i), body); err != nil {
			t.Fatal(err)
		}
	}
	s.Get(key(1)) // warm 1; 2 is now coldest
	if err := s.Put(key(4), body); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() > 30 {
		t.Fatalf("Bytes = %d beyond budget 30", s.Bytes())
	}
	if _, ok := s.Get(key(2)); ok {
		t.Fatal("coldest entry survived GC")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := s.Get(key(k)); !ok {
			t.Fatalf("warm entry %s evicted", key(k))
		}
	}
}

// TestReopenSeedsRecencyFromMtime: after reopen, GC still works (the
// index and byte accounting were rebuilt from disk).
func TestReopenSeedsRecencyFromMtime(t *testing.T) {
	dir := t.TempDir()
	s1, _ := open(t, dir, Options{MaxBytes: 1 << 20})
	body := bytes.Repeat([]byte("y"), 10)
	for i := 1; i <= 3; i++ {
		if err := s1.Put(key(i), body); err != nil {
			t.Fatal(err)
		}
	}
	s2, _ := open(t, dir, Options{MaxBytes: 3 * 10})
	if s2.Len() != 3 || s2.Bytes() != 30 {
		t.Fatalf("reopen Len/Bytes = %d/%d, want 3/30", s2.Len(), s2.Bytes())
	}
	if err := s2.Put(key(9), body); err != nil {
		t.Fatal(err)
	}
	if s2.Bytes() > 30 || s2.Len() != 3 {
		t.Fatalf("post-GC Len/Bytes = %d/%d, want 3/30", s2.Len(), s2.Bytes())
	}
}

// TestStaleTmpFilesCleared: half-finished writes from a crashed
// process are removed at Open and never become entries.
func TestStaleTmpFilesCleared(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, "tmp", "deadbeef-123")
	if err := os.WriteFile(stale, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := open(t, dir, Options{})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("stale tmp file survived Open")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

// TestIdempotentPut: re-putting an existing key is a no-op (content
// addressing: same key ⇒ same bytes).
func TestIdempotentPut(t *testing.T) {
	s, reg := open(t, t.TempDir(), Options{})
	body := []byte("only once")
	for i := 0; i < 3; i++ {
		if err := s.Put(key(5), body); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter("repro_store_puts_total").Value(); got != 1 {
		t.Fatalf("puts_total = %d, want 1", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

// TestConcurrentQuarantine: many goroutines reading the same corrupt
// entry must quarantine it exactly once — os.Rename is atomic, so one
// reader wins the move and the losers (ENOENT) only drop their index
// entry. Double-counting or racing on the rename would show up here
// under -race and in the counter.
func TestConcurrentQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, reg := open(t, dir, Options{})
	if err := s.Put(key(6), []byte("about to rot")); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(s.path(key(6)))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(s.path(key(6)), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	const readers = 16
	var start, wg sync.WaitGroup
	start.Add(1)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start.Wait()
			if _, ok := s.Get(key(6)); ok {
				t.Error("corrupt entry served as a hit")
			}
		}()
	}
	start.Done()
	wg.Wait()

	if got := reg.Counter("repro_store_corruption_total").Value(); got != 1 {
		t.Fatalf("corruption_total = %d, want exactly 1 (double-quarantine)", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key(6)+".corrupt")); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0 after quarantine", s.Len())
	}
	// The key is reusable afterwards.
	if err := s.Put(key(6), []byte("fresh bytes")); err != nil {
		t.Fatal(err)
	}
	if body, ok := s.Get(key(6)); !ok || !bytes.Equal(body, []byte("fresh bytes")) {
		t.Fatal("re-stored entry not served")
	}
}

// TestGetFramedRoundTrip: the framed accessor returns verified
// on-disk bytes that DecodeFrame maps back to the body — the peer
// transfer path end to end, minus the network.
func TestGetFramedRoundTrip(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{})
	body := []byte(`{"cells": 1000}`)
	if err := s.Put(key(8), body); err != nil {
		t.Fatal(err)
	}
	frame, ok := s.GetFramed(key(8))
	if !ok {
		t.Fatal("GetFramed missed a present entry")
	}
	got, ok := DecodeFrame(frame)
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("DecodeFrame = %q, %v", got, ok)
	}
	if !bytes.Equal(frame, EncodeFrame(body)) {
		t.Fatal("framed bytes differ from EncodeFrame of the body")
	}
	if _, ok := s.GetFramed(key(9)); ok {
		t.Fatal("GetFramed hit an absent key")
	}
	// Corrupt frames are quarantined, same as Get.
	raw, _ := os.ReadFile(s.path(key(8)))
	raw[headerSize] ^= 0xff
	os.WriteFile(s.path(key(8)), raw, 0o644)
	if _, ok := s.GetFramed(key(8)); ok {
		t.Fatal("GetFramed served a corrupt frame")
	}
	// A tampered frame fails DecodeFrame (what the fetching peer does).
	bad := EncodeFrame(body)
	bad[len(bad)-1] ^= 0xff
	if _, ok := DecodeFrame(bad); ok {
		t.Fatal("DecodeFrame accepted a tampered frame")
	}
}

// TestConcurrent hammers Put/Get from many goroutines; under -race
// this is the data-race proof for the serve miss path.
func TestConcurrent(t *testing.T) {
	s, _ := open(t, t.TempDir(), Options{MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := key(i % 10)
				_ = s.Put(k, []byte(k))
				if body, ok := s.Get(k); ok && !bytes.Equal(body, []byte(k)) {
					t.Errorf("Get(%s) returned foreign bytes", k)
				}
				s.Len()
				s.Bytes()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
}
