package sweep

import (
	"reflect"
	"runtime"
	"testing"
)

// Every sweep point is an independent simulation seeded from the point
// index, so fanning the grid across workers must not change a single
// field of the result (DESIGN.md §5 determinism invariant).
func TestSweepsParallelEqualSequential(t *testing.T) {
	seq := DefaultBaseline()
	seq.Events = 500
	seq.Workers = 1
	par := seq
	par.Workers = runtime.GOMAXPROCS(0)
	if par.Workers < 2 {
		par.Workers = 4 // still exercises the pool path on one core
	}

	cases := []struct {
		name string
		run  func(b Baseline) (*Result, error)
	}{
		{"dmin", func(b Baseline) (*Result, error) {
			return DMin(b, []int64{500, 1344, 4000})
		}},
		{"slot", func(b Baseline) (*Result, error) {
			return SlotLength(b, []int64{2000, 6000, 12000})
		}},
		{"load", func(b Baseline) (*Result, error) {
			return Load(b, []float64{0.01, 0.05, 0.20})
		}},
		{"cbh", func(b Baseline) (*Result, error) {
			return CBH(b, []int64{30, 120, 240})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := tc.run(seq)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			p, err := tc.run(par)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			// Workers is carried inside Baseline, not the Result, so the
			// two must match exactly.
			if !reflect.DeepEqual(s, p) {
				t.Errorf("workers=1 and workers=%d diverge", par.Workers)
			}
		})
	}
}
