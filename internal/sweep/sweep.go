// Package sweep runs design-space explorations over the hypervisor: it
// varies one parameter of a baseline scenario (monitoring distance dmin,
// TDMA slot length, interrupt load, bottom-handler WCET) and reports how
// average/worst-case latency, interference and context-switch overhead
// respond — the trade-off curves a system designer derives from the
// paper's mechanism.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hv"
	"repro/internal/rng"
	"repro/internal/runner"
	"repro/internal/simtime"
	"repro/internal/tracerec"
	"repro/internal/workload"
)

// Point is one evaluated parameter setting.
type Point struct {
	// Value is the swept parameter (µs for durations, fraction for
	// loads).
	Value float64
	// Measured quantities.
	Mean        simtime.Duration
	P99         simtime.Duration
	Max         simtime.Duration
	Interposed  float64 // share of IRQs interposed
	Delayed     float64 // share of IRQs delayed
	CtxSwitches uint64
	// MaxInterference is the largest interposed interference any
	// non-subscriber partition suffered over the run.
	MaxInterference simtime.Duration
	// Bound is the matching eq. (14) interference bound over the run
	// duration (zero when not applicable).
	Bound simtime.Duration
}

// Result is a completed sweep.
type Result struct {
	Parameter string
	Unit      string
	Points    []Point
}

// Write renders the sweep as a table.
func (r *Result) Write(w io.Writer) {
	fmt.Fprintf(w, "== sweep over %s ==\n", r.Parameter)
	fmt.Fprintf(w, "%12s %10s %10s %10s %8s %8s %10s %14s %14s\n",
		r.Parameter+" ("+r.Unit+")", "mean µs", "p99 µs", "max µs",
		"intp %", "del %", "ctx", "interf µs", "bound µs")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12.1f %10.1f %10.1f %10.1f %8.1f %8.1f %10d %14.1f %14.1f\n",
			p.Value, p.Mean.MicrosF(), p.P99.MicrosF(), p.Max.MicrosF(),
			100*p.Interposed, 100*p.Delayed, p.CtxSwitches,
			p.MaxInterference.MicrosF(), p.Bound.MicrosF())
	}
}

// Baseline parameterises the scenario skeleton the sweeps mutate: the
// paper's three-partition platform with one monitored source.
type Baseline struct {
	Slots  []simtime.Duration // subscriber first
	CTH    simtime.Duration
	CBH    simtime.Duration
	Events int
	Seed   uint64
	// Mean interarrival time of the exponential stream; clamped at
	// DMin so the stream conforms.
	Mean simtime.Duration
	DMin simtime.Duration
	// Workers bounds the worker pool the grid points fan out over:
	// 1 forces the sequential path, 0 selects the runner default.
	// Every point regenerates its workload from the same Seed, so
	// parallel results are byte-identical to sequential ones.
	Workers int
}

// DefaultBaseline matches the §6.1 setup at 10 % load.
func DefaultBaseline() Baseline {
	return Baseline{
		Slots:  []simtime.Duration{simtime.Micros(6000), simtime.Micros(6000), simtime.Micros(2000)},
		CTH:    simtime.Micros(6),
		CBH:    simtime.Micros(30),
		Events: 1500,
		Seed:   909,
		Mean:   simtime.Micros(1344),
		DMin:   simtime.Micros(1344),
	}
}

func (b Baseline) scenario(dmin simtime.Duration, cbh simtime.Duration, slots []simtime.Duration, mean simtime.Duration) (core.Scenario, error) {
	if len(slots) == 0 {
		return core.Scenario{}, errors.New("sweep: no slots")
	}
	src := rng.New(b.Seed)
	dist := workload.ExponentialClamped(src, mean, dmin, b.Events)
	sc := core.Scenario{Mode: hv.Monitored, Policy: hv.ResumeAcrossSlots}
	names := []string{"app1", "app2", "housekeeping", "p3", "p4", "p5"}
	for i, s := range slots {
		sc.Partitions = append(sc.Partitions, core.PartitionSpec{Name: names[i%len(names)], Slot: s})
	}
	sc.IRQs = []core.IRQSpec{{
		Name: "timer0", Partition: 0,
		CTH: b.CTH, CBH: cbh,
		Arrivals: workload.Timestamps(dist),
		DMin:     dmin,
	}}
	return sc, nil
}

func measure(a *engine.SimArena, sc core.Scenario, dmin, cbh simtime.Duration, value float64) (Point, error) {
	res, err := a.Run(sc)
	if err != nil {
		return Point{}, err
	}
	s := res.Summary
	p := Point{
		Value:       value,
		Mean:        s.Mean,
		P99:         s.P99,
		Max:         s.Max,
		Interposed:  s.Share(tracerec.Interposed),
		Delayed:     s.Share(tracerec.Delayed),
		CtxSwitches: res.Stats.CtxSwitches,
	}
	for i, part := range res.Partitions {
		if i == 0 {
			continue
		}
		if part.StolenInterposed > p.MaxInterference {
			p.MaxInterference = part.StolenInterposed
		}
	}
	if dmin > 0 {
		costs := sc.CostModel()
		p.Bound = analysis.InterposedInterference(res.Duration, dmin, costs, cbh)
	}
	return p, nil
}

// sweepPoints evaluates n independent grid points across the baseline's
// worker pool and assembles them into a Result in grid order. Each point
// builds its scenario (and regenerates its workload from the baseline
// seed) inside its own job, so parallel output is byte-identical to the
// sequential loop; each worker reuses one simulation arena across the
// points it claims.
func sweepPoints(b Baseline, parameter, unit string, n int, point func(a *engine.SimArena, i int) (Point, error)) (*Result, error) {
	pts, err := runner.MapCtxPool(context.Background(), b.Workers, n, engine.NewArena, point)
	if err != nil {
		return nil, err
	}
	return &Result{Parameter: parameter, Unit: unit, Points: pts}, nil
}

// DMin sweeps the monitoring distance: small dmin admits more interposed
// IRQs (lower latency, more interference budget consumed); large dmin
// degrades toward classic delayed handling.
func DMin(b Baseline, valuesUs []int64) (*Result, error) {
	return sweepPoints(b, "dmin", "µs", len(valuesUs), func(a *engine.SimArena, i int) (Point, error) {
		v := valuesUs[i]
		dmin := simtime.Micros(v)
		sc, err := b.scenario(dmin, b.CBH, b.Slots, b.Mean)
		if err != nil {
			return Point{}, err
		}
		pt, err := measure(a, sc, dmin, b.CBH, float64(v))
		if err != nil {
			return Point{}, fmt.Errorf("sweep: dmin %dµs: %w", v, err)
		}
		return pt, nil
	})
}

// SlotLength sweeps the subscriber's TDMA slot length (other slots
// unchanged): classic handling's latency scales with the cycle, while
// interposed handling is insensitive to it.
func SlotLength(b Baseline, valuesUs []int64) (*Result, error) {
	return sweepPoints(b, "subscriber-slot", "µs", len(valuesUs), func(a *engine.SimArena, i int) (Point, error) {
		v := valuesUs[i]
		slots := append([]simtime.Duration(nil), b.Slots...)
		slots[0] = simtime.Micros(v)
		sc, err := b.scenario(b.DMin, b.CBH, slots, b.Mean)
		if err != nil {
			return Point{}, err
		}
		pt, err := measure(a, sc, b.DMin, b.CBH, float64(v))
		if err != nil {
			return Point{}, fmt.Errorf("sweep: slot %dµs: %w", v, err)
		}
		return pt, nil
	})
}

// Load sweeps the bottom-handler load U_IRQ (eq. 17): the mean
// interarrival time is C'_BH/U with dmin following the paper's dmin = λ.
func Load(b Baseline, loads []float64) (*Result, error) {
	costs := core.Scenario{}.CostModel()
	cbhEff := costs.EffectiveBH(b.CBH)
	for _, u := range loads {
		if u <= 0 || u >= 1 {
			return nil, fmt.Errorf("sweep: load %.3f out of (0,1)", u)
		}
	}
	return sweepPoints(b, "U_IRQ", "%", len(loads), func(a *engine.SimArena, i int) (Point, error) {
		u := loads[i]
		mean := simtime.FromMicrosF(cbhEff.MicrosF() / u)
		sc, err := b.scenario(mean, b.CBH, b.Slots, mean)
		if err != nil {
			return Point{}, err
		}
		pt, err := measure(a, sc, mean, b.CBH, 100*u)
		if err != nil {
			return Point{}, fmt.Errorf("sweep: load %.3f: %w", u, err)
		}
		return pt, nil
	})
}

// CBH sweeps the bottom-handler WCET: interference per grant grows with
// C'_BH while the grant rate (dmin) is held constant.
func CBH(b Baseline, valuesUs []int64) (*Result, error) {
	return sweepPoints(b, "C_BH", "µs", len(valuesUs), func(a *engine.SimArena, i int) (Point, error) {
		v := valuesUs[i]
		cbh := simtime.Micros(v)
		sc, err := b.scenario(b.DMin, cbh, b.Slots, b.Mean)
		if err != nil {
			return Point{}, err
		}
		pt, err := measure(a, sc, b.DMin, cbh, float64(v))
		if err != nil {
			return Point{}, fmt.Errorf("sweep: cbh %dµs: %w", v, err)
		}
		return pt, nil
	})
}
