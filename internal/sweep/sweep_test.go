package sweep

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func testBaseline() Baseline {
	b := DefaultBaseline()
	b.Events = 400
	return b
}

func TestDMinSweep(t *testing.T) {
	r, err := DMin(testBaseline(), []int64{500, 1344, 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 3 {
		t.Fatalf("points = %d", len(r.Points))
	}
	for _, p := range r.Points {
		// The eq. (14) bound always envelopes the measured
		// interference.
		if p.MaxInterference > p.Bound {
			t.Errorf("dmin %.0f: interference %v exceeds bound %v", p.Value, p.MaxInterference, p.Bound)
		}
		if p.Interposed <= 0 {
			t.Errorf("dmin %.0f: nothing interposed", p.Value)
		}
	}
	// The per-run interference bound shrinks as dmin grows (fewer
	// grants admitted per window; runs of larger dmin are also longer,
	// so compare the interference share instead of the raw bound).
	if r.Points[0].MaxInterference == 0 {
		t.Error("tight dmin produced no interference")
	}
}

func TestSlotLengthSweep(t *testing.T) {
	r, err := SlotLength(testBaseline(), []int64{2000, 6000, 12000})
	if err != nil {
		t.Fatal(err)
	}
	// Interposed handling keeps the mean latency roughly flat across
	// subscriber slot lengths (the paper's core claim: latency becomes
	// independent of the TDMA layout).
	lo, hi := r.Points[0].Mean, r.Points[0].Mean
	for _, p := range r.Points {
		if p.Mean < lo {
			lo = p.Mean
		}
		if p.Mean > hi {
			hi = p.Mean
		}
	}
	if float64(hi) > 6*float64(lo) {
		t.Errorf("mean latency varies %v..%v across slot lengths — not TDMA-independent", lo, hi)
	}
}

func TestLoadSweep(t *testing.T) {
	r, err := Load(testBaseline(), []float64{0.01, 0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range r.Points {
		if p.Bound == 0 || p.MaxInterference > p.Bound {
			t.Errorf("point %d: interference %v vs bound %v", i, p.MaxInterference, p.Bound)
		}
	}
	if _, err := Load(testBaseline(), []float64{1.5}); err == nil {
		t.Error("load > 1 accepted")
	}
}

func TestCBHSweep(t *testing.T) {
	r, err := CBH(testBaseline(), []int64{10, 120})
	if err != nil {
		t.Fatal(err)
	}
	// Larger handlers mean larger latency.
	if r.Points[1].Mean <= r.Points[0].Mean {
		t.Errorf("mean latency did not grow with C_BH: %v vs %v", r.Points[0].Mean, r.Points[1].Mean)
	}
}

func TestWriteTable(t *testing.T) {
	r := &Result{Parameter: "x", Unit: "µs", Points: []Point{{Value: 1, Mean: simtime.Micros(10)}}}
	var sb strings.Builder
	r.Write(&sb)
	out := sb.String()
	if !strings.Contains(out, "sweep over x") || !strings.Contains(out, "10.0") {
		t.Fatalf("table output: %q", out)
	}
}
