package tracerec

import "testing"

func TestFilterBySourceAndPartition(t *testing.T) {
	var l Log
	l.Add(Record{Source: 0, Partition: 0, Done: 10, Mode: Direct})
	l.Add(Record{Source: 1, Partition: 0, Done: 20, Mode: Delayed})
	l.Add(Record{Source: 0, Partition: 1, Done: 30, Mode: Interposed})
	l.Add(Record{Source: 1, Partition: 1, Done: 40, Mode: Direct})

	if got := l.BySource(0).Len(); got != 2 {
		t.Fatalf("BySource(0) = %d", got)
	}
	if got := l.ByPartition(1).Len(); got != 2 {
		t.Fatalf("ByPartition(1) = %d", got)
	}
	both := l.Filter(func(r Record) bool { return r.Source == 0 && r.Partition == 1 })
	if both.Len() != 1 || both.Records[0].Mode != Interposed {
		t.Fatalf("combined filter = %+v", both.Records)
	}
	// Filtering never aliases the original storage length.
	if l.Len() != 4 {
		t.Fatal("original log mutated")
	}
	empty := l.Filter(func(Record) bool { return false })
	if empty.Len() != 0 {
		t.Fatal("empty filter")
	}
	if s := empty.Summarize(); s.Count != 0 {
		t.Fatal("summary of empty filtered log")
	}
}
