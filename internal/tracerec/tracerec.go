// Package tracerec records per-IRQ latency measurements and renders them
// the way the paper's evaluation reports them: latency histograms with
// per-handling-mode breakdown (Fig. 6), rolling-average latency series
// over event index (Fig. 7), and summary statistics.
//
// A latency is, as in §6.1, the time between top-handler activation (the
// hardware IRQ) and the completion of the corresponding bottom handler.
package tracerec

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/simtime"
)

// Mode classifies how an IRQ's bottom handler was processed.
type Mode int

const (
	// Direct: the IRQ arrived during its subscriber's own slot and the
	// bottom handler ran immediately after the top handler returned.
	Direct Mode = iota
	// Interposed: the bottom handler ran inside a foreign slot under
	// the monitoring condition (§5).
	Interposed
	// Delayed: the bottom handler waited for the subscriber's slot
	// (Fig. 3).
	Delayed
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Direct:
		return "direct"
	case Interposed:
		return "interposed"
	case Delayed:
		return "delayed"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Record is one measured IRQ delivery. Shared IRQs produce one record
// per subscriber partition.
type Record struct {
	Source    int          // IRQ source index
	Partition int          // partition whose bottom handler processed it
	Seq       uint64       // per-source delivery sequence number
	Arrival   simtime.Time // top-handler activation (hardware IRQ)
	Done      simtime.Time // bottom-handler completion
	Mode      Mode
	// Deferred marks an IRQ whose processing path differs from its
	// top-handler decision: a queued (delayed-decision) IRQ that a
	// *later* grant served via the FIFO queue. Such latencies include
	// queueing delay outside the eq. (16) interposed-path model.
	Deferred bool
}

// Latency returns Done − Arrival.
func (r Record) Latency() simtime.Duration { return r.Done.Sub(r.Arrival) }

// Log accumulates records.
type Log struct {
	Records []Record
}

// NewLog returns a log whose record slice is pre-sized to capacity, so
// hot-path appends never reallocate when the producer knows the final
// record count up front (e.g. internal/hv knows the arrival count).
func NewLog(capacity int) *Log {
	return &Log{Records: make([]Record, 0, capacity)}
}

// Add appends a record.
func (l *Log) Add(r Record) { l.Records = append(l.Records, r) }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.Records) }

// Reset empties the log for reuse, keeping the backing array when its
// capacity covers the new expected record count (the arena contract:
// same-shaped reruns must not reallocate).
func (l *Log) Reset(capacity int) {
	if cap(l.Records) < capacity {
		l.Records = make([]Record, 0, capacity)
		return
	}
	l.Records = l.Records[:0]
}

// Truncate drops records beyond the first n, keeping capacity — the
// restore primitive of snapshot/fork: records are append-only, so
// rewinding a log to a snapshot is exactly a truncation.
func (l *Log) Truncate(n int) {
	if n < 0 || n > len(l.Records) {
		panic(fmt.Sprintf("tracerec: Truncate(%d) outside [0,%d]", n, len(l.Records)))
	}
	l.Records = l.Records[:n]
}

// Durations returns all latencies in record order. The caller owns the
// returned slice; Summarize sorts exactly such a slice in place instead
// of building a second intermediate copy.
func (l *Log) Durations() []simtime.Duration {
	out := make([]simtime.Duration, len(l.Records))
	for i, r := range l.Records {
		out[i] = r.Latency()
	}
	return out
}

// Filter returns a new log with the records matching keep.
func (l *Log) Filter(keep func(Record) bool) *Log {
	out := &Log{}
	for _, r := range l.Records {
		if keep(r) {
			out.Records = append(out.Records, r)
		}
	}
	return out
}

// BySource returns the records of one IRQ source.
func (l *Log) BySource(src int) *Log {
	return l.Filter(func(r Record) bool { return r.Source == src })
}

// ByPartition returns the records processed by one partition.
func (l *Log) ByPartition(part int) *Log {
	return l.Filter(func(r Record) bool { return r.Partition == part })
}

// Summary holds aggregate latency statistics.
type Summary struct {
	Count     int
	ByMode    [3]int // indexed by Mode
	Mean      simtime.Duration
	Min       simtime.Duration
	Max       simtime.Duration
	P50       simtime.Duration
	P95       simtime.Duration
	P99       simtime.Duration
	MeanDirct simtime.Duration // mean over Direct records only
	MeanIntp  simtime.Duration // mean over Interposed records only
	MeanDelay simtime.Duration // mean over Delayed records only
}

// Summarize computes statistics over the log. It makes exactly one
// allocation (the latency slice, which doubles as the percentile sort
// buffer); all sums and mode counts are accumulated in the same pass.
func (l *Log) Summarize() Summary {
	var s Summary
	s.Count = len(l.Records)
	if s.Count == 0 {
		return s
	}
	lats := make([]simtime.Duration, s.Count)
	var total, tDir, tInt, tDel int64
	for i, r := range l.Records {
		lat := r.Latency()
		lats[i] = lat
		total += int64(lat)
		s.ByMode[r.Mode]++
		switch r.Mode {
		case Direct:
			tDir += int64(lat)
		case Interposed:
			tInt += int64(lat)
		case Delayed:
			tDel += int64(lat)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	s.Min, s.Max = lats[0], lats[len(lats)-1]
	s.Mean = simtime.Duration(total / int64(s.Count))
	s.P50 = percentile(lats, 0.50)
	s.P95 = percentile(lats, 0.95)
	s.P99 = percentile(lats, 0.99)
	if n := s.ByMode[Direct]; n > 0 {
		s.MeanDirct = simtime.Duration(tDir / int64(n))
	}
	if n := s.ByMode[Interposed]; n > 0 {
		s.MeanIntp = simtime.Duration(tInt / int64(n))
	}
	if n := s.ByMode[Delayed]; n > 0 {
		s.MeanDelay = simtime.Duration(tDel / int64(n))
	}
	return s
}

func percentile(sorted []simtime.Duration, p float64) simtime.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Share returns the fraction of records handled in the given mode.
func (s Summary) Share(m Mode) float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.ByMode[m]) / float64(s.Count)
}

// WriteSummary renders a human-readable summary.
func (s Summary) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "IRQs: %d  (direct %d / %.1f%%, interposed %d / %.1f%%, delayed %d / %.1f%%)\n",
		s.Count,
		s.ByMode[Direct], 100*s.Share(Direct),
		s.ByMode[Interposed], 100*s.Share(Interposed),
		s.ByMode[Delayed], 100*s.Share(Delayed))
	fmt.Fprintf(w, "latency: mean %.1fµs  min %.1fµs  p50 %.1fµs  p95 %.1fµs  p99 %.1fµs  max %.1fµs\n",
		s.Mean.MicrosF(), s.Min.MicrosF(), s.P50.MicrosF(), s.P95.MicrosF(), s.P99.MicrosF(), s.Max.MicrosF())
}

// Histogram is a fixed-bin latency histogram, as in Fig. 6.
type Histogram struct {
	BinWidth simtime.Duration
	Bins     []int    // Bins[i] counts latencies in [i·w, (i+1)·w)
	ByMode   [][3]int // same bins, split per handling mode
	Overflow int
	Total    int
}

// NewHistogram builds a histogram over the log with the given bin width
// and range [0, max).
func (l *Log) NewHistogram(binWidth, max simtime.Duration) *Histogram {
	if binWidth <= 0 {
		panic("tracerec: non-positive bin width")
	}
	n := int(simtime.CeilDiv(max, binWidth))
	h := &Histogram{
		BinWidth: binWidth,
		Bins:     make([]int, n),
		ByMode:   make([][3]int, n),
	}
	for _, r := range l.Records {
		lat := r.Latency()
		i := int(lat / binWidth)
		h.Total++
		if i >= n {
			h.Overflow++
			continue
		}
		h.Bins[i]++
		h.ByMode[i][r.Mode]++
	}
	return h
}

// WriteCSV emits "bin_start_us,count,direct,interposed,delayed" rows.
func (h *Histogram) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "bin_start_us,count,direct,interposed,delayed")
	for i, c := range h.Bins {
		start := simtime.Duration(i) * h.BinWidth
		fmt.Fprintf(w, "%d,%d,%d,%d,%d\n", start.Micros(), c, h.ByMode[i][Direct], h.ByMode[i][Interposed], h.ByMode[i][Delayed])
	}
	if h.Overflow > 0 {
		fmt.Fprintf(w, "overflow,%d,,,\n", h.Overflow)
	}
}

// WriteASCII renders the histogram as a text bar chart, log-compressing
// the dominant first bins the way the paper uses a broken y-axis.
func (h *Histogram) WriteASCII(w io.Writer, width int) {
	maxCount := 0
	for _, c := range h.Bins {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		fmt.Fprintln(w, "(empty histogram)")
		return
	}
	for i, c := range h.Bins {
		if c == 0 {
			continue
		}
		start := simtime.Duration(i) * h.BinWidth
		// Log scale: the first bin (direct IRQs) dwarfs the rest.
		bar := 0
		if c > 0 {
			bar = int(float64(width) * math.Log1p(float64(c)) / math.Log1p(float64(maxCount)))
			if bar == 0 {
				bar = 1
			}
		}
		fmt.Fprintf(w, "%7dµs |%-*s| %d\n", start.Micros(), width, strings.Repeat("#", bar), c)
	}
	if h.Overflow > 0 {
		fmt.Fprintf(w, "  >range  %d\n", h.Overflow)
	}
}

// RollingAverage returns the running mean latency after each record, in
// µs — the y-axis of Fig. 7. window == 0 yields the cumulative mean from
// the start (matching the figure's "average IRQ latency" trajectory);
// window > 0 yields a sliding-window mean.
func (l *Log) RollingAverage(window int) []float64 {
	out := make([]float64, len(l.Records))
	if window <= 0 {
		var sum float64
		for i, r := range l.Records {
			sum += r.Latency().MicrosF()
			out[i] = sum / float64(i+1)
		}
		return out
	}
	var sum float64
	for i, r := range l.Records {
		sum += r.Latency().MicrosF()
		if i >= window {
			sum -= l.Records[i-window].Latency().MicrosF()
			out[i] = sum / float64(window)
		} else {
			out[i] = sum / float64(i+1)
		}
	}
	return out
}

// Series is a named (x, y) series for figure output.
type Series struct {
	Name string
	Y    []float64
}

// WriteSeriesCSV writes aligned series as CSV with an index column.
// Shorter series are padded with empty cells.
func WriteSeriesCSV(w io.Writer, series ...Series) {
	fmt.Fprint(w, "idx")
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(w, ",%s", s.Name)
		if len(s.Y) > maxLen {
			maxLen = len(s.Y)
		}
	}
	fmt.Fprintln(w)
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(w, "%d", i)
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(w, ",%.2f", s.Y[i])
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

// Downsample returns every k-th element of y (plus the final element),
// keeping figure-sized output compact.
func Downsample(y []float64, k int) []float64 {
	if k <= 1 || len(y) == 0 {
		return append([]float64(nil), y...)
	}
	var out []float64
	for i := 0; i < len(y); i += k {
		out = append(out, y[i])
	}
	if (len(y)-1)%k != 0 {
		out = append(out, y[len(y)-1])
	}
	return out
}
