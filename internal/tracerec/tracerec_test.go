package tracerec

import (
	"strings"
	"testing"

	"repro/internal/simtime"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }

func rec(arrivalUs, doneUs int64, m Mode) Record {
	return Record{
		Arrival: simtime.Time(us(arrivalUs)),
		Done:    simtime.Time(us(doneUs)),
		Mode:    m,
	}
}

func TestLatency(t *testing.T) {
	r := rec(100, 150, Direct)
	if r.Latency() != us(50) {
		t.Fatalf("latency = %v", r.Latency())
	}
}

func TestSummarize(t *testing.T) {
	var l Log
	l.Add(rec(0, 10, Direct))
	l.Add(rec(0, 30, Interposed))
	l.Add(rec(0, 110, Delayed))
	l.Add(rec(0, 50, Delayed))
	s := l.Summarize()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.ByMode[Direct] != 1 || s.ByMode[Interposed] != 1 || s.ByMode[Delayed] != 2 {
		t.Fatalf("by mode = %v", s.ByMode)
	}
	if s.Mean != us(50) {
		t.Fatalf("mean = %v, want 50µs", s.Mean)
	}
	if s.Min != us(10) || s.Max != us(110) {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != us(30) {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.MeanDelay != us(80) {
		t.Fatalf("mean delayed = %v", s.MeanDelay)
	}
	if s.Share(Delayed) != 0.5 {
		t.Fatalf("share = %g", s.Share(Delayed))
	}
}

func TestSummarizeEmpty(t *testing.T) {
	var l Log
	s := l.Summarize()
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if s.Share(Direct) != 0 {
		t.Fatal("share of empty log")
	}
}

func TestPercentiles(t *testing.T) {
	var l Log
	for i := int64(1); i <= 100; i++ {
		l.Add(rec(0, i, Direct))
	}
	s := l.Summarize()
	if s.P50 != us(50) {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.P95 != us(95) {
		t.Fatalf("p95 = %v", s.P95)
	}
	if s.P99 != us(99) {
		t.Fatalf("p99 = %v", s.P99)
	}
}

func TestHistogramBinning(t *testing.T) {
	var l Log
	l.Add(rec(0, 10, Direct))     // bin 0
	l.Add(rec(0, 49, Direct))     // bin 0
	l.Add(rec(0, 50, Interposed)) // bin 1
	l.Add(rec(0, 149, Delayed))   // bin 2
	l.Add(rec(0, 1000, Delayed))  // overflow
	h := l.NewHistogram(us(50), us(200))
	if len(h.Bins) != 4 {
		t.Fatalf("bins = %d", len(h.Bins))
	}
	if h.Bins[0] != 2 || h.Bins[1] != 1 || h.Bins[2] != 1 || h.Bins[3] != 0 {
		t.Fatalf("bins = %v", h.Bins)
	}
	if h.Overflow != 1 || h.Total != 5 {
		t.Fatalf("overflow = %d, total = %d", h.Overflow, h.Total)
	}
	if h.ByMode[0][Direct] != 2 || h.ByMode[1][Interposed] != 1 {
		t.Fatalf("by-mode bins wrong")
	}
}

func TestHistogramCSV(t *testing.T) {
	var l Log
	l.Add(rec(0, 10, Direct))
	l.Add(rec(0, 60, Delayed))
	var sb strings.Builder
	l.NewHistogram(us(50), us(100)).WriteCSV(&sb)
	out := sb.String()
	if !strings.HasPrefix(out, "bin_start_us,count,direct,interposed,delayed\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "0,1,1,0,0") {
		t.Fatalf("missing bin row: %q", out)
	}
	if !strings.Contains(out, "50,1,0,0,1") {
		t.Fatalf("missing second bin: %q", out)
	}
}

func TestHistogramASCII(t *testing.T) {
	var l Log
	for i := 0; i < 100; i++ {
		l.Add(rec(0, 10, Direct))
	}
	l.Add(rec(0, 60, Delayed))
	var sb strings.Builder
	l.NewHistogram(us(50), us(100)).WriteASCII(&sb, 40)
	out := sb.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars: %q", out)
	}
	var empty Log
	sb.Reset()
	empty.NewHistogram(us(50), us(100)).WriteASCII(&sb, 40)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("empty histogram not flagged")
	}
}

func TestRollingAverageCumulative(t *testing.T) {
	var l Log
	l.Add(rec(0, 10, Direct))
	l.Add(rec(0, 30, Direct))
	l.Add(rec(0, 20, Direct))
	avg := l.RollingAverage(0)
	if avg[0] != 10 || avg[1] != 20 || avg[2] != 20 {
		t.Fatalf("cumulative = %v", avg)
	}
}

func TestRollingAverageWindowed(t *testing.T) {
	var l Log
	for _, v := range []int64{10, 20, 30, 40} {
		l.Add(rec(0, v, Direct))
	}
	avg := l.RollingAverage(2)
	// idx0: 10; idx1: 15; idx2: (20+30)/2 = 25; idx3: 35.
	want := []float64{10, 15, 25, 35}
	for i := range want {
		if avg[i] != want[i] {
			t.Fatalf("windowed = %v, want %v", avg, want)
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	var sb strings.Builder
	WriteSeriesCSV(&sb,
		Series{Name: "a", Y: []float64{1, 2}},
		Series{Name: "b", Y: []float64{3}},
	)
	out := sb.String()
	if !strings.HasPrefix(out, "idx,a,b\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "0,1.00,3.00") {
		t.Fatalf("row 0: %q", out)
	}
	// Shorter series padded.
	if !strings.Contains(out, "1,2.00,\n") {
		t.Fatalf("row 1 padding: %q", out)
	}
}

func TestDownsample(t *testing.T) {
	y := []float64{0, 1, 2, 3, 4, 5, 6}
	d := Downsample(y, 3)
	want := []float64{0, 3, 6}
	if len(d) != len(want) {
		t.Fatalf("downsampled = %v", d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("downsampled = %v, want %v", d, want)
		}
	}
	// Last element kept when not on the grid.
	d = Downsample(y[:6], 4) // indices 0, 4, and last (5)
	if len(d) != 3 || d[2] != 5 {
		t.Fatalf("tail not kept: %v", d)
	}
	if got := Downsample(y, 1); len(got) != len(y) {
		t.Fatal("k=1 must copy")
	}
}

func TestModeString(t *testing.T) {
	if Direct.String() != "direct" || Interposed.String() != "interposed" || Delayed.String() != "delayed" {
		t.Fatal("mode strings")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode string")
	}
}

func TestWriteSummaryOutput(t *testing.T) {
	var l Log
	l.Add(rec(0, 100, Direct))
	var sb strings.Builder
	l.Summarize().WriteSummary(&sb)
	out := sb.String()
	if !strings.Contains(out, "IRQs: 1") || !strings.Contains(out, "direct 1") {
		t.Fatalf("summary output: %q", out)
	}
}
