package viz

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/tracerec"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting it under
// -update. The SVG output is deterministic by construction; these tests
// make drift (float formatting, layout constants, element order) a
// deliberate, reviewed change instead of a silent one.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test ./internal/viz -update` after intentional changes): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file; rerun with -update if intentional", name)
	}
}

func TestHistogramSVGGolden(t *testing.T) {
	var sb strings.Builder
	if err := HistogramSVG(&sb, sampleHistogram(), "Figure 6 golden"); err != nil {
		t.Fatal(err)
	}
	golden(t, "histogram.svg", []byte(sb.String()))
}

func TestSeriesSVGGolden(t *testing.T) {
	series := []tracerec.Series{
		{Name: "a_load_1.0000", Y: []float64{40, 42, 44, 48, 60, 90, 70, 55, 48, 45}},
		{Name: "b_load_0.2500", Y: []float64{40, 41, 41, 42, 45, 50, 47, 44, 42, 41}},
	}
	var sb strings.Builder
	if err := SeriesSVG(&sb, series, "Figure 7 golden", "event", "avg latency [µs]"); err != nil {
		t.Fatal(err)
	}
	golden(t, "series.svg", []byte(sb.String()))
}
