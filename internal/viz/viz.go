// Package viz renders the reproduction's figures as standalone SVG
// documents using only the standard library: the Fig. 6 latency
// histograms (stacked by handling mode, with a log-compressed count axis
// mimicking the paper's broken y-axis) and the Fig. 7 average-latency
// series. The output is deterministic, so generated figures can be
// diffed across runs.
package viz

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/tracerec"
)

// Canvas geometry shared by all figures.
const (
	width      = 860
	height     = 420
	marginL    = 70
	marginR    = 24
	marginT    = 40
	marginB    = 56
	plotW      = width - marginL - marginR
	plotH      = height - marginT - marginB
	fontFamily = "Helvetica, Arial, sans-serif"
)

// Mode colours (direct, interposed, delayed) — colour-blind-safe set.
var modeColors = [3]string{"#0072b2", "#009e73", "#d55e00"}

var seriesColors = []string{"#0072b2", "#009e73", "#d55e00", "#cc79a7", "#e69f00", "#56b4e9"}

type svgWriter struct {
	w   io.Writer
	err error
}

func (s *svgWriter) printf(format string, args ...any) {
	if s.err != nil {
		return
	}
	_, s.err = fmt.Fprintf(s.w, format, args...)
}

func (s *svgWriter) open(title string) {
	s.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	s.printf(`<rect x="0" y="0" width="%d" height="%d" fill="white"/>`+"\n", width, height)
	s.printf(`<text x="%d" y="%d" font-family="%s" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, marginT-16, fontFamily, escape(title))
}

func (s *svgWriter) close() {
	s.printf("</svg>\n")
}

func (s *svgWriter) axes(xlabel, ylabel string) {
	s.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black" stroke-width="1"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	s.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black" stroke-width="1"/>`+"\n",
		marginL, marginT, marginL, marginT+plotH)
	s.printf(`<text x="%d" y="%d" font-family="%s" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-14, fontFamily, escape(xlabel))
	s.printf(`<text x="16" y="%d" font-family="%s" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, fontFamily, marginT+plotH/2, escape(ylabel))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// HistogramSVG renders a latency histogram stacked by handling mode. The
// count axis is log-compressed (log1p) so the dominant direct bin does
// not flatten the rest — the SVG counterpart of the paper's broken
// y-axis.
func HistogramSVG(w io.Writer, h *tracerec.Histogram, title string) error {
	if h == nil || len(h.Bins) == 0 {
		return errors.New("viz: empty histogram")
	}
	maxCount := 0
	for _, c := range h.Bins {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount == 0 {
		return errors.New("viz: histogram has no samples")
	}
	s := &svgWriter{w: w}
	s.open(title)
	s.axes("latency (µs)", "IRQs (log-compressed)")

	scale := func(count float64) float64 {
		return math.Log1p(count) / math.Log1p(float64(maxCount))
	}
	barW := float64(plotW) / float64(len(h.Bins))
	for i, total := range h.Bins {
		if total == 0 {
			continue
		}
		x := float64(marginL) + float64(i)*barW
		// Stack the modes proportionally within the compressed total
		// height, bottom-up.
		totalH := scale(float64(total)) * float64(plotH)
		yCursor := float64(marginT + plotH)
		for m := 0; m < 3; m++ {
			c := h.ByMode[i][m]
			if c == 0 {
				continue
			}
			hPart := totalH * float64(c) / float64(total)
			yCursor -= hPart
			s.printf(`<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"><title>%d-%dµs: %d %s</title></rect>`+"\n",
				x, yCursor, math.Max(barW-0.5, 0.5), hPart, modeColors[m],
				int64(h.BinWidth)*int64(i)/200, int64(h.BinWidth)*int64(i+1)/200,
				c, tracerec.Mode(m))
		}
	}

	// X ticks: five evenly spaced bin boundaries.
	for i := 0; i <= 5; i++ {
		frac := float64(i) / 5
		x := float64(marginL) + frac*float64(plotW)
		us := frac * float64(len(h.Bins)) * h.BinWidth.MicrosF()
		s.printf(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, marginT+plotH, x, marginT+plotH+4)
		s.printf(`<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%.0f</text>`+"\n",
			x, marginT+plotH+18, fontFamily, us)
	}
	// Y ticks at counts 1, 10, 100, 1000, ... up to maxCount.
	for c := 1.0; c <= float64(maxCount); c *= 10 {
		y := float64(marginT+plotH) - scale(c)*float64(plotH)
		s.printf(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, y, marginL, y)
		s.printf(`<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			marginL-8, y+4, fontFamily, c)
	}
	legend(s, []string{"direct", "interposed", "delayed"}, modeColors[:])
	s.close()
	return s.err
}

// SeriesSVG renders one or more y-series over their index (the Fig. 7
// layout: average latency over IRQ events).
func SeriesSVG(w io.Writer, series []tracerec.Series, title, xlabel, ylabel string) error {
	if len(series) == 0 {
		return errors.New("viz: no series")
	}
	maxLen := 0
	maxY := 0.0
	for _, sr := range series {
		if len(sr.Y) > maxLen {
			maxLen = len(sr.Y)
		}
		for _, v := range sr.Y {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxLen < 2 || maxY <= 0 {
		return errors.New("viz: series too short or empty")
	}
	s := &svgWriter{w: w}
	s.open(title)
	s.axes(xlabel, ylabel)

	var names []string
	var colors []string
	for i, sr := range series {
		color := seriesColors[i%len(seriesColors)]
		names = append(names, sr.Name)
		colors = append(colors, color)
		var path strings.Builder
		for j, v := range sr.Y {
			x := float64(marginL) + float64(j)/float64(maxLen-1)*float64(plotW)
			y := float64(marginT+plotH) - v/maxY*float64(plotH)
			if j == 0 {
				fmt.Fprintf(&path, "M%.2f %.2f", x, y)
			} else {
				fmt.Fprintf(&path, " L%.2f %.2f", x, y)
			}
		}
		s.printf(`<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", path.String(), color)
	}

	// Ticks.
	for i := 0; i <= 5; i++ {
		frac := float64(i) / 5
		x := float64(marginL) + frac*float64(plotW)
		s.printf(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, marginT+plotH, x, marginT+plotH+4)
		s.printf(`<text x="%.1f" y="%d" font-family="%s" font-size="11" text-anchor="middle">%.0f</text>`+"\n",
			x, marginT+plotH+18, fontFamily, frac*float64(maxLen))
		y := float64(marginT+plotH) - frac*float64(plotH)
		s.printf(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, y, marginL, y)
		s.printf(`<text x="%d" y="%.1f" font-family="%s" font-size="11" text-anchor="end">%.0f</text>`+"\n",
			marginL-8, y+4, fontFamily, frac*maxY)
	}
	legend(s, names, colors)
	s.close()
	return s.err
}

func legend(s *svgWriter, names []string, colors []string) {
	x := marginL + 12
	y := marginT + 8
	for i, name := range names {
		s.printf(`<rect x="%d" y="%d" width="12" height="12" fill="%s"/>`+"\n", x, y+18*i, colors[i])
		s.printf(`<text x="%d" y="%d" font-family="%s" font-size="12">%s</text>`+"\n",
			x+18, y+10+18*i, fontFamily, escape(name))
	}
}
