package viz

import (
	"encoding/xml"
	"strings"
	"testing"

	"repro/internal/simtime"
	"repro/internal/tracerec"
)

func sampleHistogram() *tracerec.Histogram {
	var l tracerec.Log
	add := func(doneUs int64, m tracerec.Mode, n int) {
		for i := 0; i < n; i++ {
			l.Add(tracerec.Record{Done: simtime.Time(simtime.Micros(doneUs)), Mode: m})
		}
	}
	add(20, tracerec.Direct, 500)
	add(120, tracerec.Interposed, 80)
	add(3000, tracerec.Delayed, 30)
	add(7000, tracerec.Delayed, 25)
	return l.NewHistogram(simtime.Micros(50), simtime.Micros(8000))
}

// wellFormed parses the SVG with encoding/xml to catch unbalanced tags
// or broken escaping.
func wellFormed(t *testing.T, doc string) {
	t.Helper()
	dec := xml.NewDecoder(strings.NewReader(doc))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
}

func TestHistogramSVG(t *testing.T) {
	var sb strings.Builder
	if err := HistogramSVG(&sb, sampleHistogram(), "Figure 6a <test>"); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	wellFormed(t, doc)
	if !strings.Contains(doc, "<svg") || !strings.Contains(doc, "</svg>") {
		t.Fatal("missing svg envelope")
	}
	// Escaped title.
	if !strings.Contains(doc, "Figure 6a &lt;test&gt;") {
		t.Fatal("title not escaped")
	}
	// All three mode colours appear.
	for _, c := range modeColors {
		if !strings.Contains(doc, c) {
			t.Fatalf("mode colour %s missing", c)
		}
	}
	// Legend labels.
	for _, name := range []string{"direct", "interposed", "delayed"} {
		if !strings.Contains(doc, name) {
			t.Fatalf("legend %q missing", name)
		}
	}
}

func TestHistogramSVGErrors(t *testing.T) {
	var sb strings.Builder
	if err := HistogramSVG(&sb, nil, "x"); err == nil {
		t.Error("nil histogram accepted")
	}
	var l tracerec.Log
	empty := l.NewHistogram(simtime.Micros(50), simtime.Micros(100))
	if err := HistogramSVG(&sb, empty, "x"); err == nil {
		t.Error("empty histogram accepted")
	}
}

func TestSeriesSVG(t *testing.T) {
	series := []tracerec.Series{
		{Name: "a_100%", Y: []float64{2500, 2000, 300, 150, 140}},
		{Name: "d_6.25%", Y: []float64{2500, 2200, 1700, 1650, 1600}},
	}
	var sb strings.Builder
	if err := SeriesSVG(&sb, series, "Figure 7", "IRQ events", "avg latency (µs)"); err != nil {
		t.Fatal(err)
	}
	doc := sb.String()
	wellFormed(t, doc)
	if strings.Count(doc, "<path") != 2 {
		t.Fatalf("want 2 paths, got %d", strings.Count(doc, "<path"))
	}
	if !strings.Contains(doc, "a_100%") || !strings.Contains(doc, "d_6.25%") {
		t.Fatal("legend names missing")
	}
	if !strings.Contains(doc, "avg latency") {
		t.Fatal("axis label missing")
	}
}

func TestSeriesSVGErrors(t *testing.T) {
	var sb strings.Builder
	if err := SeriesSVG(&sb, nil, "x", "x", "y"); err == nil {
		t.Error("no series accepted")
	}
	if err := SeriesSVG(&sb, []tracerec.Series{{Name: "a", Y: []float64{1}}}, "x", "x", "y"); err == nil {
		t.Error("single-point series accepted")
	}
	if err := SeriesSVG(&sb, []tracerec.Series{{Name: "a", Y: []float64{0, 0}}}, "x", "x", "y"); err == nil {
		t.Error("all-zero series accepted")
	}
}

func TestSVGDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := HistogramSVG(&a, sampleHistogram(), "t"); err != nil {
		t.Fatal(err)
	}
	if err := HistogramSVG(&b, sampleHistogram(), "t"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("histogram SVG not deterministic")
	}
}
