// Package workload generates the IRQ arrival streams of the paper's
// evaluation. Following §6.1, every stream is pre-generated as a distance
// array (interarrival times) before the simulation runs, so arrival
// generation adds no overhead inside the simulated top handler.
package workload

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/simtime"
)

// Exponential returns n interarrival distances drawn from an exponential
// distribution with the given mean λ (§6.1, scenarios 1 and 2). Distances
// are rounded to whole cycles and floored at one cycle.
func Exponential(src *rng.Source, mean simtime.Duration, n int) []simtime.Duration {
	if mean <= 0 {
		panic("workload: non-positive mean interarrival time")
	}
	out := make([]simtime.Duration, n)
	for i := range out {
		d := simtime.Duration(math.Round(src.Exp(float64(mean))))
		if d < 1 {
			d = 1
		}
		out[i] = d
	}
	return out
}

// ExponentialClamped returns n exponential interarrival distances clamped
// from below to dmin, so the stream always satisfies the l = 1 monitoring
// condition (§6.1, scenario 3: "the pseudo-random interarrival time is
// set at least to dmin").
func ExponentialClamped(src *rng.Source, mean, dmin simtime.Duration, n int) []simtime.Duration {
	out := Exponential(src, mean, n)
	for i, d := range out {
		if d < dmin {
			out[i] = dmin
		}
	}
	return out
}

// PeriodicJitter returns n interarrival-free absolute release times of a
// periodic stream with release jitter drawn uniformly from [0, jitter],
// starting at offset.
func PeriodicJitter(src *rng.Source, period, jitter, offset simtime.Duration, n int) []simtime.Time {
	out := make([]simtime.Time, n)
	for i := range out {
		t := simtime.Time(offset) + simtime.Time(int64(i)*int64(period))
		if jitter > 0 {
			t = t.Add(simtime.Duration(src.Int63n(int64(jitter) + 1)))
		}
		out[i] = t
	}
	return out
}

// Distances converts sorted absolute timestamps to an interarrival
// distance array whose first entry is the offset of the first event from
// time zero.
func Distances(ts []simtime.Time) []simtime.Duration {
	out := make([]simtime.Duration, len(ts))
	prev := simtime.Time(0)
	for i, t := range ts {
		out[i] = t.Sub(prev)
		prev = t
	}
	return out
}

// Timestamps converts a distance array to absolute timestamps starting
// from time zero.
func Timestamps(dist []simtime.Duration) []simtime.Time {
	out := make([]simtime.Time, len(dist))
	t := simtime.Time(0)
	for i, d := range dist {
		t = t.Add(d)
		out[i] = t
	}
	return out
}

// Merge merges several sorted timestamp streams into one sorted stream.
func Merge(streams ...[]simtime.Time) []simtime.Time {
	var total int
	for _, s := range streams {
		total += len(s)
	}
	out := make([]simtime.Time, 0, total)
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ECUConfig parameterises the synthetic automotive activation trace used
// in place of the paper's proprietary ECU measurement (Appendix A).
type ECUConfig struct {
	// Events is the approximate number of activations to produce
	// (the paper's trace has ~11000).
	Events int
	// Seed selects the deterministic random stream.
	Seed uint64
}

// DefaultECU matches the scale of the paper's trace.
func DefaultECU() ECUConfig { return ECUConfig{Events: 11000, Seed: 0xEC00A5A5} }

// ECUTrace synthesises a task-activation trace with the structure of an
// automotive engine ECU:
//
//   - time-triggered tasks at 5/10/20 ms with small release jitter
//     (the classic OSEK time-triggered set),
//   - a crank-synchronous task whose period follows an RPM profile
//     sweeping idle → high load → idle (two activations per revolution),
//   - sporadic communication events (CAN receive) in occasional bursts.
//
// The result is bursty and non-Poisson with a learnable δ⁻ prefix, the
// properties Appendix A's experiment depends on. The trace is truncated
// to cfg.Events activations.
func ECUTrace(cfg ECUConfig) ([]simtime.Time, error) {
	if cfg.Events < 100 {
		return nil, errors.New("workload: ECU trace needs at least 100 events")
	}
	src := rng.New(cfg.Seed)

	// Estimate the horizon needed for the requested event count.
	// Rates: 200/s + 100/s + 50/s time-triggered, ~100/s crank at mid
	// RPM, ~30/s sporadic ≈ 480 events/s.
	horizon := simtime.Duration(float64(cfg.Events)/480.0*float64(simtime.Second)) * 2

	nOf := func(period simtime.Duration) int {
		return int(int64(horizon)/int64(period)) + 1
	}

	tt5 := PeriodicJitter(src, 5*simtime.Millisecond, 100*simtime.Microsecond, 0, nOf(5*simtime.Millisecond))
	tt10 := PeriodicJitter(src, 10*simtime.Millisecond, 200*simtime.Microsecond, simtime.Micros(1300), nOf(10*simtime.Millisecond))
	tt20 := PeriodicJitter(src, 20*simtime.Millisecond, 200*simtime.Microsecond, simtime.Micros(2700), nOf(20*simtime.Millisecond))

	// Crank-synchronous task: RPM profile 900 → 5400 → 900 over the
	// horizon (sinusoidal ramp), two activations per revolution.
	var crank []simtime.Time
	t := simtime.Time(simtime.Micros(500))
	for t < simtime.Time(horizon) {
		frac := float64(t) / float64(horizon)
		rpm := 900 + (5400-900)*math.Sin(frac*math.Pi)
		// Two activations per revolution: period = 60/(2·rpm) seconds.
		period := simtime.FromMicrosF(60e6 / (2 * rpm))
		// Small combustion-cycle jitter.
		j := simtime.Duration(src.Int63n(int64(period/50) + 1))
		crank = append(crank, t.Add(j))
		t = t.Add(period)
	}

	// Sporadic CAN events: bursts of 2–5 frames with 150–400 µs
	// spacing, burst starts exponentially distributed at ~25/s.
	var can []simtime.Time
	t = simtime.Time(simtime.Micros(900))
	for t < simtime.Time(horizon) {
		gap := simtime.Duration(src.Exp(float64(40 * simtime.Millisecond)))
		if gap < simtime.Millisecond {
			gap = simtime.Millisecond
		}
		t = t.Add(gap)
		burst := 2 + src.Intn(4)
		bt := t
		for b := 0; b < burst && bt < simtime.Time(horizon); b++ {
			can = append(can, bt)
			bt = bt.Add(simtime.Micros(150) + simtime.Duration(src.Int63n(int64(simtime.Micros(250)))))
		}
	}

	all := Merge(tt5, tt10, tt20, crank, can)
	if len(all) < cfg.Events {
		return nil, fmt.Errorf("workload: synthesised only %d events, want %d", len(all), cfg.Events)
	}
	all = all[:cfg.Events]
	// Guarantee strictly increasing timestamps (merged streams can
	// collide at cycle resolution).
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			all[i] = all[i-1] + 1
		}
	}
	return all, nil
}

// Stats summarises a distance array.
type Stats struct {
	N          int
	Mean       simtime.Duration
	Min        simtime.Duration
	Max        simtime.Duration
	BelowCount int // entries strictly below the reference distance
}

// Describe computes summary statistics of a distance array; ref counts
// how many distances fall below a reference (e.g. dmin).
func Describe(dist []simtime.Duration, ref simtime.Duration) Stats {
	s := Stats{N: len(dist)}
	if len(dist) == 0 {
		return s
	}
	s.Min = dist[0]
	var sum int64
	for _, d := range dist {
		sum += int64(d)
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
		if d < ref {
			s.BelowCount++
		}
	}
	s.Mean = simtime.Duration(sum / int64(len(dist)))
	return s
}
