package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/simtime"
)

func us(v int64) simtime.Duration { return simtime.Micros(v) }

func TestExponentialMean(t *testing.T) {
	src := rng.New(1)
	mean := us(1344)
	dist := Exponential(src, mean, 100000)
	var sum float64
	for _, d := range dist {
		if d < 1 {
			t.Fatal("distance below one cycle")
		}
		sum += float64(d)
	}
	got := sum / float64(len(dist))
	if math.Abs(got-float64(mean))/float64(mean) > 0.02 {
		t.Fatalf("mean = %.1f cycles, want ≈ %d", got, mean)
	}
}

func TestExponentialDeterministic(t *testing.T) {
	a := Exponential(rng.New(7), us(100), 100)
	b := Exponential(rng.New(7), us(100), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed workloads differ")
		}
	}
}

func TestExponentialClamped(t *testing.T) {
	src := rng.New(2)
	dmin := us(500)
	dist := ExponentialClamped(src, us(500), dmin, 10000)
	atDmin := 0
	for _, d := range dist {
		if d < dmin {
			t.Fatalf("distance %v below dmin %v", d, dmin)
		}
		if d == dmin {
			atDmin++
		}
	}
	// With mean = dmin, P(X ≤ dmin) = 1−e⁻¹ ≈ 63 % of samples clamp.
	frac := float64(atDmin) / float64(len(dist))
	if frac < 0.55 || frac > 0.72 {
		t.Fatalf("clamped fraction = %.2f, want ≈ 0.63", frac)
	}
}

func TestTimestampsDistancesRoundTrip(t *testing.T) {
	f := func(raw []uint32) bool {
		dist := make([]simtime.Duration, 0, len(raw))
		for _, r := range raw {
			dist = append(dist, simtime.Duration(r%1000000)+1)
		}
		ts := Timestamps(dist)
		back := Distances(ts)
		if len(back) != len(dist) {
			return false
		}
		for i := range dist {
			if back[i] != dist[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimestampsMonotone(t *testing.T) {
	ts := Timestamps([]simtime.Duration{us(5), us(1), us(10)})
	if ts[0] != simtime.Time(us(5)) || ts[1] != simtime.Time(us(6)) || ts[2] != simtime.Time(us(16)) {
		t.Fatalf("timestamps = %v", ts)
	}
}

func TestPeriodicJitter(t *testing.T) {
	src := rng.New(3)
	period, jitter := us(100), us(10)
	ts := PeriodicJitter(src, period, jitter, us(50), 100)
	for i, tm := range ts {
		base := simtime.Time(us(50)).Add(simtime.Duration(i) * period)
		if tm < base || tm > base.Add(jitter) {
			t.Fatalf("event %d at %v outside [%v, %v]", i, tm, base, base.Add(jitter))
		}
	}
}

func TestPeriodicZeroJitter(t *testing.T) {
	ts := PeriodicJitter(rng.New(4), us(100), 0, 0, 5)
	for i, tm := range ts {
		if tm != simtime.Time(us(int64(i)*100)) {
			t.Fatalf("event %d at %v", i, tm)
		}
	}
}

func TestMerge(t *testing.T) {
	a := []simtime.Time{1, 5, 9}
	b := []simtime.Time{2, 5, 8}
	m := Merge(a, b)
	if len(m) != 6 {
		t.Fatalf("len = %d", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i] < m[i-1] {
			t.Fatalf("merge not sorted: %v", m)
		}
	}
}

func TestECUTraceProperties(t *testing.T) {
	cfg := DefaultECU()
	cfg.Events = 2000
	trace, err := ECUTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != cfg.Events {
		t.Fatalf("len = %d, want %d", len(trace), cfg.Events)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] <= trace[i-1] {
			t.Fatalf("trace not strictly increasing at %d", i)
		}
	}
	// Bursty: the minimum pairwise gap must be far below the mean gap,
	// otherwise the δ⁻ learning experiment is trivial.
	dist := Distances(trace)
	st := Describe(dist[1:], 0)
	if st.Min >= st.Mean/4 {
		t.Fatalf("trace not bursty: min %v vs mean %v", st.Min, st.Mean)
	}
}

func TestECUTraceDeterministic(t *testing.T) {
	cfg := DefaultECU()
	cfg.Events = 500
	a, err := ECUTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ECUTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-config traces differ")
		}
	}
}

func TestECUTraceSeedSensitivity(t *testing.T) {
	a, _ := ECUTrace(ECUConfig{Events: 500, Seed: 1})
	b, _ := ECUTrace(ECUConfig{Events: 500, Seed: 2})
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestECUTraceValidation(t *testing.T) {
	if _, err := ECUTrace(ECUConfig{Events: 10}); err == nil {
		t.Fatal("tiny trace accepted")
	}
}

func TestDescribe(t *testing.T) {
	dist := []simtime.Duration{us(10), us(20), us(30)}
	st := Describe(dist, us(15))
	if st.N != 3 || st.Min != us(10) || st.Max != us(30) || st.Mean != us(20) {
		t.Fatalf("stats = %+v", st)
	}
	if st.BelowCount != 1 {
		t.Fatalf("BelowCount = %d", st.BelowCount)
	}
	if z := Describe(nil, 0); z.N != 0 {
		t.Fatal("empty describe")
	}
}
