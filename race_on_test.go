//go:build race

package repro

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so AllocsPerRun budgets only hold without
// it (scripts/check.sh runs a dedicated non-race alloc-budget pass).
const raceEnabled = true
