#!/bin/sh
# Performance regression gate (DESIGN.md §11): regenerate the cmd/bench
# evidence in quick mode and diff the tracked benchmarks against the
# best committed BENCH_PR*.json values. Fails on a >10 % regression in
# ns/op or allocs/op (cmd/benchdiff). Timings are min-of-N, so a single
# noisy scheduler quantum does not fail the gate; quick mode shrinks
# only the wall-clock sections, never the gated benchmarks themselves.
set -eux

cd "$(dirname "$0")/.."

tmp="$(mktemp -t benchdiff.XXXXXX.json)"
trap 'rm -f "$tmp"' EXIT

go run ./cmd/bench -quick -o "$tmp"
go run ./cmd/benchdiff -new "$tmp"
