#!/bin/sh
# Performance regression gate (DESIGN.md §11): regenerate the cmd/bench
# evidence in quick mode and diff the tracked benchmarks against the
# best committed BENCH_PR*.json values. Fails on a >10 % regression in
# ns/op or allocs/op (cmd/benchdiff). Timings are min-of-N, so a single
# noisy scheduler quantum does not fail the gate; quick mode shrinks
# only the wall-clock sections, never the gated benchmarks themselves.
#
# Two drift guards (the PR 7 false failure — host slowdown on untouched
# paths — must not fail CI): a first failure triggers one paired rerun,
# and the gate then compares the elementwise minimum of both same-host
# reports (a real regression reproduces; noise does not). Persistent
# environment drift is acknowledged through the committed
# BENCH_REBASE.json sentinel, which cmd/benchdiff applies to ns/op
# baselines only.
set -eux

cd "$(dirname "$0")/.."

tmp="$(mktemp -t benchdiff.XXXXXX.json)"
tmp2="$(mktemp -t benchdiff2.XXXXXX.json)"
trap 'rm -f "$tmp" "$tmp2"' EXIT

go run ./cmd/bench -quick -o "$tmp"
if ! go run ./cmd/benchdiff -new "$tmp"; then
    echo "benchdiff.sh: regression reported; pairing with a same-host rerun" >&2
    go run ./cmd/bench -quick -o "$tmp2"
    go run ./cmd/benchdiff -new "$tmp,$tmp2"
fi
