#!/bin/sh
# Campaign orchestrator smoke (DESIGN.md §12): the out-of-process half
# of the million-cell campaign story, complementing
# internal/serve/campaign_test.go (which kills at exact journal-record
# boundaries). This script builds the real daemon and the campaign CLI,
# folds a 1000-cell generator spec locally as the reference bytes, then
# holds the served path to the orchestrator's contract:
#
#   1. a campaign submitted over HTTP and followed via the NDJSON
#      stream converges — progress chunks are monotone in done cells —
#      and its final aggregate is byte-identical to the local fold;
#   2. resubmitting the finished spec answers 200 from the store with
#      exactly those bytes (content-addressed, never recomputed);
#   3. a SIGKILL mid-campaign loses nothing: the restarted daemon
#      replays the generator spec from its journal, refolds stored
#      cells as cache hits, and the client — which keeps polling across
#      the restart — receives the same byte-identical aggregate.
#
# Usage: scripts/campaignsmoke.sh [seed]   (default seed 2014)
# CAMPAIGNSMOKE_LOGDIR, when set, receives the daemon log for CI
# artifact upload; otherwise everything lives and dies in a temp dir.
set -eu

cd "$(dirname "$0")/.."

SEED="${1:-2014}"
PORT=$((18000 + SEED % 1000))
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/campaignsmoke.XXXXXX")"
DATA="$WORK/data"
LOG="$WORK/served.log"
PID=""

say()  { echo "campaignsmoke: $*"; }
fail() {
    say "FAIL: $*"
    if [ -n "${CAMPAIGNSMOKE_LOGDIR:-}" ]; then
        mkdir -p "$CAMPAIGNSMOKE_LOGDIR"
        cp "$LOG" "$CAMPAIGNSMOKE_LOGDIR/served.log" 2>/dev/null || true
        say "daemon log preserved in $CAMPAIGNSMOKE_LOGDIR/served.log"
    else
        say "daemon log: $LOG (workdir kept for post-mortem)"
        trap - EXIT
    fi
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    exit 1
}
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() { # args: extra served flags (e.g. -workers N)
    "$WORK/served" -addr "127.0.0.1:$PORT" -queue 256 \
        -data-dir "$DATA" "$@" >>"$LOG" 2>&1 &
    PID=$!
}

merged_cells() { # echoes the daemon's cells-merged counter
    curl -s "$BASE/metrics" |
        awk '$1 == "repro_campaign_cells_merged_total" { print $2; found = 1 } END { if (!found) print 0 }'
}

wait_ready() {
    i=0
    until [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = 200 ]; do
        i=$((i + 1))
        [ "$i" -gt 600 ] && fail "daemon (pid $PID) never became ready"
        kill -0 "$PID" 2>/dev/null || fail "daemon (pid $PID) died; see log"
        sleep 0.05
    done
}

say "seed $SEED, port $PORT, workdir $WORK"
go build -o "$WORK/served" ./cmd/served
go build -o "$WORK/campaign" ./cmd/campaign

# The 1000-cell spec: every registered fault model × the default 4-step
# intensity sweep × 50 seeds, over a short warm prefix so the smoke
# finishes in CI time. prefix_seed is the script's seed, so reruns with
# another seed exercise a different (still deterministic) campaign.
cat >"$WORK/spec.json" <<EOF
{
  "intensities": {"min": 0.25, "max": 1.0, "steps": 4},
  "seeds": {"base": 1, "count": 50},
  "prefix_seed": $SEED,
  "prefix_events": 80,
  "suffix_events": 30
}
EOF

say "phase 0: local in-process fold (the reference bytes)"
"$WORK/campaign" -spec "$WORK/spec.json" -o "$WORK/local.json" 2>>"$LOG" ||
    fail "local fold failed"
grep -q '"total_cells": 1000' "$WORK/local.json" ||
    fail "local fold is not a 1000-cell campaign"

say "phase 1: served campaign, streamed to completion"
start_daemon -workers 4
wait_ready
"$WORK/campaign" -spec "$WORK/spec.json" -addr "$BASE" \
    -o "$WORK/served.json" 2>"$WORK/stream.log" ||
    fail "served campaign failed: $(cat "$WORK/stream.log")"
cmp -s "$WORK/local.json" "$WORK/served.json" ||
    fail "served aggregate differs from the local fold"

# Convergence: the streamed progress narration must be monotone in done
# cells and end at 1000/1000.
awk 'match($0, /[0-9]+\/[0-9]+ cells/) {
        split(substr($0, RSTART, RLENGTH), a, "/")
        n = a[1] + 0
        if (n < prev) bad = 1
        prev = n
    }
    END { exit (bad || prev != 1000) ? 1 : 0 }' "$WORK/stream.log" ||
    fail "streamed progress not monotone to 1000/1000: $(cat "$WORK/stream.log")"

say "phase 2: resubmission answers from the store, byte-identical"
curl -s -o "$WORK/again.json" -D "$WORK/again.hdr" -X POST \
    -H 'Content-Type: application/json' -d @"$WORK/spec.json" "$BASE/v1/campaigns"
grep -qiE '^X-Cache: (hit|store)' "$WORK/again.hdr" ||
    fail "finished campaign recomputed on resubmit: $(grep -i '^X-Cache' "$WORK/again.hdr")"
cmp -s "$WORK/local.json" "$WORK/again.json" ||
    fail "resubmitted aggregate differs from the local fold"

say "phase 3: SIGKILL mid-campaign, restart, client rides through"
# A fresh spec (different prefix seed → different content address) so
# nothing is cached. The phase-1 daemon drains cleanly; a 1-worker
# replacement serves the kill-phase campaign slowly enough that the
# SIGKILL reliably lands mid-flight.
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
start_daemon -workers 1
wait_ready

sed "s/\"prefix_seed\": $SEED/\"prefix_seed\": $((SEED + 1))/" \
    "$WORK/spec.json" >"$WORK/spec2.json"
"$WORK/campaign" -spec "$WORK/spec2.json" -o "$WORK/local2.json" 2>>"$LOG" ||
    fail "local fold of the kill-phase spec failed"
"$WORK/campaign" -spec "$WORK/spec2.json" -addr "$BASE" -retries 100 \
    -o "$WORK/served2.json" 2>"$WORK/stream2.log" &
CLIENT=$!

# Kill once the campaign is demonstrably mid-flight: some cells merged,
# and provably not all of them (the kill beats the fold to cell 1000).
i=0
while :; do
    n="$(merged_cells)"
    [ "$n" -ge 50 ] && break
    i=$((i + 1))
    [ "$i" -gt 2400 ] && fail "kill-phase campaign never reached 50 merged cells"
    kill -0 "$CLIENT" 2>/dev/null || fail "client exited before the kill: $(cat "$WORK/stream2.log")"
    sleep 0.02
done
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
[ "$n" -lt 1000 ] || fail "campaign finished before the kill; nothing was interrupted"
say "phase 3: daemon SIGKILLed with $n/1000 cells merged"

start_daemon -workers 4
wait_ready
curl -s "$BASE/metrics" | awk '$1 == "repro_campaign_resumed_total" && $2 == 1 { found = 1 } END { exit found ? 0 : 1 }' ||
    fail "restarted daemon did not resume the interrupted campaign"

wait "$CLIENT" || fail "client did not survive the restart: $(cat "$WORK/stream2.log")"
cmp -s "$WORK/local2.json" "$WORK/served2.json" ||
    fail "post-restart aggregate differs from the local fold"

say "phase 4: graceful drain"
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""

say "PASS: seed $SEED — 1000-cell campaign streamed, resubmitted and kill-resumed to byte-identical aggregates"
