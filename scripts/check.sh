#!/bin/sh
# Tier-1 quality gate (DESIGN.md §6): module hygiene (go.mod/go.sum must
# be tidy — reprolint's analyzer scope lists are rooted at the module
# path, so drift would silently unscope them), build, vet, the full
# test suite under the race detector — the determinism contract
# (DESIGN.md §10, §15) rides inside it via TestRepositoryIsClean, which
# runs the whole reprolint suite over the tree, so a separate driver
# invocation here would type-check the repository a second time for no
# new signal (CI keeps one dedicated fail-fast reprolint step for
# annotated diagnostics) — the
# parallel experiment engine must be data-race free — one pass over
# every benchmark so the measured paths keep compiling and running, the
# chaos smoke campaign (DESIGN.md §8): monitored runs must satisfy the
# temporal-independence oracle and the monitor-ablated babbling-idiot
# runs must violate it, the differential fuzzing smoke (DESIGN.md §14):
# 500 generated scenarios where the DES never beats the analytic bound,
# a planted bound-tightening bug is caught and delta-debugged to a
# minimal counterexample, and the served diffuzz campaign aggregates to
# bytes identical to the local fold, the kill–restart recovery harness
# (DESIGN.md §9): a SIGKILLed daemon must lose no acked job and never
# serve divergent bytes, the campaign orchestrator smoke
# (DESIGN.md §12): a 1000-cell generator campaign served over HTTP —
# streamed, resubmitted and SIGKILL-resumed — must aggregate to bytes
# identical to the local in-process fold, and the cluster kill oracle
# (DESIGN.md §13): a 3-node ring loses a SIGKILLed member mid-campaign
# without losing an acked job or a byte of the aggregate, and a wiped
# replacement recovers warm via verified peer fetch.
set -eux

cd "$(dirname "$0")/.."

go mod tidy
git diff --exit-code -- go.mod go.sum
go build ./...
go vet ./...
go test -race ./...
# Zero-alloc engine budgets (DESIGN.md §11): the race detector's
# instrumentation allocates, so the AllocsPerRun budget tests are
# skipped under -race and run here in a dedicated non-race pass.
go test -run 'TestAllocBudget|TestReinitSteadyStateDoesNotAllocate|TestResetRecyclesEventsWithoutAllocating' . ./internal/hv ./internal/des
go test -bench=. -benchtime=1x -run '^$' .
go run ./cmd/chaos -smoke -events 80
sh scripts/diffuzzsmoke.sh
sh scripts/crashtest.sh
sh scripts/campaignsmoke.sh
sh scripts/clusterkill.sh
