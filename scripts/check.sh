#!/bin/sh
# Tier-1 quality gate (DESIGN.md §6): build, vet, the full test suite
# under the race detector — the parallel experiment engine must be
# data-race free — one pass over every benchmark so the measured paths
# keep compiling and running, the chaos smoke campaign (DESIGN.md §8):
# monitored runs must satisfy the temporal-independence oracle and the
# monitor-ablated babbling-idiot runs must violate it, and the
# kill–restart recovery harness (DESIGN.md §9): a SIGKILLed daemon must
# lose no acked job and never serve divergent bytes.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go test -bench=. -benchtime=1x -run '^$' .
go run ./cmd/chaos -smoke -events 80
sh scripts/crashtest.sh
