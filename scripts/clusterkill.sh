#!/bin/sh
# Cluster kill oracle (DESIGN.md §13): the out-of-process half of the
# fault-tolerant ring story, complementing internal/serve/cluster_test.go
# (which kills at exact journal-record boundaries in-process). The
# script builds the real daemon and campaign CLI, brings up a 3-node
# ring over loopback HTTP, and holds it to the ISSUE's oracle:
#
#   1. a 1000-cell campaign submitted through the ring-aware client
#      (comma-separated -addr) completes even though one non-coordinator
#      node is SIGKILLed mid-flight, and the final aggregate is
#      byte-identical to a single-process local fold;
#   2. the coordinator demonstrably used the ring: cells were dispatched
#      to peers, and the dead node's unfinished cells were re-owned;
#   3. a wiped replacement on the dead node's address answers the
#      finished campaign spec via verified peer fetch — X-Cache: peer,
#      no recompute;
#   4. the surviving ring drains cleanly.
#
# Usage: scripts/clusterkill.sh [seed]   (default seed 3011)
# CLUSTERKILL_LOGDIR, when set, receives the three daemon logs for CI
# artifact upload; otherwise everything lives and dies in a temp dir.
set -eu

cd "$(dirname "$0")/.."

SEED="${1:-3011}"
PORT1=$((19000 + SEED % 500))
PORT2=$((PORT1 + 1))
PORT3=$((PORT1 + 2))
BASE1="http://127.0.0.1:$PORT1"
BASE2="http://127.0.0.1:$PORT2"
BASE3="http://127.0.0.1:$PORT3"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/clusterkill.XXXXXX")"
PID1=""; PID2=""; PID3=""

say()  { echo "clusterkill: $*"; }
fail() {
    say "FAIL: $*"
    if [ -n "${CLUSTERKILL_LOGDIR:-}" ]; then
        mkdir -p "$CLUSTERKILL_LOGDIR"
        for n in 1 2 3; do
            cp "$WORK/n$n.log" "$CLUSTERKILL_LOGDIR/n$n.log" 2>/dev/null || true
        done
        say "daemon logs preserved in $CLUSTERKILL_LOGDIR/"
    else
        say "daemon logs: $WORK/n*.log (workdir kept for post-mortem)"
        trap - EXIT
    fi
    for p in "$PID1" "$PID2" "$PID3"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    exit 1
}
cleanup() {
    for p in "$PID1" "$PID2" "$PID3"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT

start_node() { # args: index port [extra served flags]
    n="$1"; port="$2"; shift 2
    "$WORK/served" -addr "127.0.0.1:$port" -queue 256 -workers 1 \
        -data-dir "$WORK/data$n" \
        -cluster-members "$WORK/members.json" -cluster-self "n$n" \
        "$@" >>"$WORK/n$n.log" 2>&1 &
    eval "PID$n=$!"
}

wait_ready() { # args: base pid
    i=0
    until [ "$(curl -s -o /dev/null -w '%{http_code}' "$1/readyz")" = 200 ]; do
        i=$((i + 1))
        [ "$i" -gt 600 ] && fail "daemon at $1 never became ready"
        kill -0 "$2" 2>/dev/null || fail "daemon at $1 (pid $2) died; see log"
        sleep 0.05
    done
}

metric() { # args: base metric-name → echoes the counter (0 if absent)
    curl -s "$1/metrics" |
        awk -v m="$2" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

say "seed $SEED, ports $PORT1-$PORT3, workdir $WORK"
go build -o "$WORK/served" ./cmd/served
go build -o "$WORK/campaign" ./cmd/campaign

cat >"$WORK/members.json" <<EOF
[
  {"name": "n1", "url": "$BASE1"},
  {"name": "n2", "url": "$BASE2"},
  {"name": "n3", "url": "$BASE3"}
]
EOF

# The 1000-cell spec (every registered fault model × 4 intensities ×
# 50 seeds); prefix_seed is the script's seed, so reruns exercise a
# different (still deterministic) campaign.
cat >"$WORK/spec.json" <<EOF
{
  "intensities": {"min": 0.25, "max": 1.0, "steps": 4},
  "seeds": {"base": 1, "count": 50},
  "prefix_seed": $SEED,
  "prefix_events": 80,
  "suffix_events": 30
}
EOF

say "phase 0: local in-process fold (the reference bytes)"
"$WORK/campaign" -spec "$WORK/spec.json" -o "$WORK/local.json" 2>>"$WORK/n1.log" ||
    fail "local fold failed"
grep -q '"total_cells": 1000' "$WORK/local.json" ||
    fail "local fold is not a 1000-cell campaign"

say "phase 1: 3-node ring up"
start_node 1 "$PORT1"
start_node 2 "$PORT2"
start_node 3 "$PORT3"
wait_ready "$BASE1" "$PID1"
wait_ready "$BASE2" "$PID2"
wait_ready "$BASE3" "$PID3"
curl -s "$BASE1/v1/cluster" | grep -q '"enabled": true' ||
    fail "node 1 does not report an enabled cluster"

say "phase 2: ring campaign via multi-address client; SIGKILL one node mid-flight"
"$WORK/campaign" -spec "$WORK/spec.json" -addr "$BASE1,$BASE2,$BASE3" \
    -retries 100 -o "$WORK/ring.json" 2>"$WORK/stream.log" &
CLIENT=$!

# The ring-aware client routes the campaign by key, so the coordinator
# is discovered, not chosen: it is the node whose merge counter moves.
COORD=""; COORD_BASE=""; VICTIM=""; VICTIM_BASE=""; VICTIM_PORT=""
i=0
while [ -z "$COORD" ]; do
    for n in 1 2 3; do
        eval "base=\$BASE$n"
        if [ "$(metric "$base" repro_campaign_cells_merged_total)" -gt 0 ]; then
            COORD="$n"; COORD_BASE="$base"
            break
        fi
    done
    i=$((i + 1))
    [ "$i" -gt 600 ] && fail "no node ever started merging the campaign"
    kill -0 "$CLIENT" 2>/dev/null || fail "client exited early: $(cat "$WORK/stream.log")"
    [ -n "$COORD" ] || sleep 0.05
done
case "$COORD" in
    1) VICTIM=2; VICTIM_BASE="$BASE2"; VICTIM_PORT="$PORT2" ;;
    *) VICTIM=1; VICTIM_BASE="$BASE1"; VICTIM_PORT="$PORT1" ;;
esac
say "phase 2: coordinator is n$COORD; victim is n$VICTIM"

# Kill once demonstrably mid-flight: enough cells merged that work is
# in motion, provably not all of them.
i=0
while :; do
    n="$(metric "$COORD_BASE" repro_campaign_cells_merged_total)"
    [ "$n" -ge 100 ] && break
    i=$((i + 1))
    [ "$i" -gt 2400 ] && fail "campaign never reached 100 merged cells"
    kill -0 "$CLIENT" 2>/dev/null || fail "client exited before the kill: $(cat "$WORK/stream.log")"
    sleep 0.02
done
eval "vpid=\$PID$VICTIM"
kill -9 "$vpid"
wait "$vpid" 2>/dev/null || true
eval "PID$VICTIM=''"
[ "$n" -lt 1000 ] || fail "campaign finished before the kill; nothing was interrupted"
say "phase 2: n$VICTIM SIGKILLed with $n/1000 cells merged on the coordinator"

wait "$CLIENT" || fail "ring campaign failed after the kill: $(cat "$WORK/stream.log")"
cmp -s "$WORK/local.json" "$WORK/ring.json" ||
    fail "ring aggregate differs from the local fold"

DISPATCHED="$(metric "$COORD_BASE" repro_cluster_cells_dispatched_total)"
REOWNED="$(metric "$COORD_BASE" repro_cluster_cells_reowned_total)"
[ "$DISPATCHED" -gt 0 ] || fail "coordinator never dispatched a cell to a peer"
say "phase 2: $DISPATCHED cells dispatched to peers, $REOWNED re-owned after the kill"

say "phase 3: wiped replacement recovers warm via peer fetch"
rm -rf "$WORK/data$VICTIM"
start_node "$VICTIM" "$VICTIM_PORT"
eval "vpid=\$PID$VICTIM"
wait_ready "$VICTIM_BASE" "$vpid"
curl -s -o "$WORK/peer.json" -D "$WORK/peer.hdr" -X POST \
    -H 'Content-Type: application/json' -d @"$WORK/spec.json" "$VICTIM_BASE/v1/campaigns"
grep -qi '^X-Cache: peer' "$WORK/peer.hdr" ||
    fail "wiped node recomputed instead of peer-fetching: $(grep -i '^X-Cache' "$WORK/peer.hdr" || echo 'no X-Cache header')"
cmp -s "$WORK/local.json" "$WORK/peer.json" ||
    fail "peer-fetched aggregate differs from the local fold"
[ "$(metric "$VICTIM_BASE" repro_cluster_peer_fetch_hits_total)" -gt 0 ] ||
    fail "peer fetch hit counter never moved on the wiped node"

say "phase 4: graceful ring drain"
for n in 1 2 3; do
    eval "p=\$PID$n"
    [ -n "$p" ] && kill -TERM "$p" 2>/dev/null || true
done
for n in 1 2 3; do
    eval "p=\$PID$n"
    [ -n "$p" ] && { wait "$p" 2>/dev/null || true; }
    eval "PID$n=''"
done

say "PASS: seed $SEED — kill-one-node-loses-nothing held: byte-identical aggregate, $DISPATCHED dispatched/$REOWNED re-owned, warm peer recovery"
