#!/bin/sh
# Kill–restart recovery harness (DESIGN.md §9): the out-of-process half
# of the crash-safety story, complementing internal/serve/crash_test.go
# (which simulates the kill at exact journal-record boundaries). This
# script builds the real daemon, runs a campaign against it over HTTP,
# SIGKILLs it mid-campaign at a seeded point, restarts it on the same
# data directory and asserts the crash-consistency invariants:
#
#   1. no acked job is lost — every 202/200 the dead daemon issued is
#      pollable after restart and reaches "done";
#   2. no result is ever served twice with different bytes;
#   3. recovered results are byte-identical to cold runs of the same
#      specs on a fresh daemon;
#   4. a result that reached the durable store before the kill is
#      served from it after restart (X-Cache: store), not recomputed;
#   5. a graceful SIGTERM drain compacts the journal to empty.
#
# Usage: scripts/crashtest.sh [seed]   (default seed 2014, the paper's)
# CRASHTEST_LOGDIR, when set, receives the daemon logs for CI artifact
# upload; otherwise everything lives and dies in a temp directory.
set -eu

cd "$(dirname "$0")/.."

SEED="${1:-2014}"
PORT=$((17000 + SEED % 1000))
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/crashtest.XXXXXX")"
DATA="$WORK/data"
COLDDATA="$WORK/cold-data"
LOG="$WORK/served.log"
BIN="$WORK/served"
PID=""

say()  { echo "crashtest: $*"; }
fail() {
    say "FAIL: $*"
    if [ -n "${CRASHTEST_LOGDIR:-}" ]; then
        mkdir -p "$CRASHTEST_LOGDIR"
        cp "$LOG" "$CRASHTEST_LOGDIR/served.log" 2>/dev/null || true
        say "daemon log preserved in $CRASHTEST_LOGDIR/served.log"
    else
        say "daemon log: $LOG (workdir kept for post-mortem)"
        trap - EXIT
    fi
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    exit 1
}
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

start_daemon() { # args: extra served flags...
    "$BIN" -addr "127.0.0.1:$PORT" "$@" >>"$LOG" 2>&1 &
    PID=$!
}

wait_ready() {
    i=0
    until [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = 200 ]; do
        i=$((i + 1))
        [ "$i" -gt 600 ] && fail "daemon (pid $PID) never became ready"
        kill -0 "$PID" 2>/dev/null || fail "daemon (pid $PID) died; see log"
        sleep 0.05
    done
}

submit() { # $1: spec JSON; echoes the response body
    curl -s -X POST -H 'Content-Type: application/json' \
        -d "$1" "$BASE/v1/experiments"
}

poll_done() { # $1: job id; echoes the compacted result JSON
    i=0
    while :; do
        st="$(curl -s "$BASE/v1/jobs/$1" | jq -r .status)"
        case "$st" in
        done) curl -s "$BASE/v1/jobs/$1" | jq -c .result; return 0 ;;
        failed | cancelled) fail "job $1 recovered as $st, want done" ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 1200 ] && fail "job $1 stuck in $st"
        sleep 0.05
    done
}

say "seed $SEED, port $PORT, workdir $WORK"
go build -o "$BIN" ./cmd/served

# The campaign: one spec completed before the kill (its result reaches
# the durable store), one heavy spec that pins the single worker, and a
# seeded number of quick specs that are queued when the kill lands.
PRESPEC='{"kind": "fig6a", "events": 300, "wait": true}'
HEAVY='{"kind": "fig6b", "events": 150000, "seed": 99}'
NKILL=$((SEED % 4 + 2)) # quick jobs acked before the kill: 2..5

say "phase 1: campaign against a 1-worker daemon, SIGKILL after $NKILL queued jobs"
start_daemon -workers 1 -data-dir "$DATA"
wait_ready

curl -s -o "$WORK/pre.body" -X POST -H 'Content-Type: application/json' \
    -d "$PRESPEC" -D "$WORK/pre.hdr" "$BASE/v1/experiments"
grep -qi '^X-Cache: miss' "$WORK/pre.hdr" || fail "pre-kill blocking run not computed fresh"

HEAVY_ID="$(submit "$HEAVY" | jq -r .id)"
[ "$HEAVY_ID" != null ] || fail "heavy job not acked"

: >"$WORK/acked" # id<TAB>spec per acked quick job
CHAOS='{"kind": "chaos", "events": 60, "chaos": {"faults": ["babbling-idiot"], "intensities": [0.5]}}'
id="$(submit "$CHAOS" | jq -r .id)"
[ "$id" != null ] || fail "chaos job not acked"
printf '%s\t%s\n' "$id" "$CHAOS" >>"$WORK/acked"
n=0
while [ "$n" -lt "$NKILL" ]; do
    spec="{\"kind\": \"fig6a\", \"events\": $((400 + n))}"
    id="$(submit "$spec" | jq -r .id)"
    [ "$id" != null ] || fail "quick job $n not acked"
    printf '%s\t%s\n' "$id" "$spec" >>"$WORK/acked"
    n=$((n + 1))
done

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
say "phase 1: daemon SIGKILLed with 1 running and $NKILL queued jobs"

say "phase 2: restart on the same data dir, recover every acked job"
start_daemon -workers 2 -data-dir "$DATA"
wait_ready
grep -q 'replayed' "$LOG" || fail "restart log does not mention journal replay"

while IFS="$(printf '\t')" read -r id spec; do
    poll_done "$id" >"$WORK/recovered.$id"
done <"$WORK/acked"
poll_done "$HEAVY_ID" >/dev/null
say "phase 2: all $((NKILL + 2)) interrupted jobs recovered to done"

# Invariant 4: the pre-kill completed result is served from the durable
# store — the memory tier died with the process, recomputing would be a
# miss.
curl -s -o "$WORK/pre2.body" -X POST -H 'Content-Type: application/json' \
    -d "$PRESPEC" -D "$WORK/pre2.hdr" "$BASE/v1/experiments"
grep -qiE '^X-Cache: (store|hit)' "$WORK/pre2.hdr" ||
    fail "pre-kill result recomputed after restart: $(grep -i '^X-Cache' "$WORK/pre2.hdr")"
cmp -s "$WORK/pre.body" "$WORK/pre2.body" ||
    fail "pre-kill result served with different bytes after restart"

# Invariant 2: serving the same spec twice yields identical bytes.
while IFS="$(printf '\t')" read -r id spec; do
    wspec="$(printf '%s' "$spec" | sed 's/}$/, "wait": true}/')"
    submit "$wspec" | jq -c . >"$WORK/again1.$id"
    submit "$wspec" | jq -c . >"$WORK/again2.$id"
    cmp -s "$WORK/again1.$id" "$WORK/again2.$id" ||
        fail "job $id served twice with different bytes"
    cmp -s "$WORK/recovered.$id" "$WORK/again1.$id" ||
        fail "job $id poll result differs from its resubmission"
done <"$WORK/acked"

say "phase 3: graceful SIGTERM drain compacts the journal"
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
size="$(wc -c <"$DATA/journal.wal")"
[ "$size" -eq 0 ] || fail "journal holds $size bytes after a clean drain, want 0"

say "phase 4: cold runs on a fresh daemon match the recovered bytes"
: >"$LOG.cold" # separate log; replay greps above must not see this run
LOG="$LOG.cold"
start_daemon -workers 2 -data-dir "$COLDDATA"
wait_ready
while IFS="$(printf '\t')" read -r id spec; do
    wspec="$(printf '%s' "$spec" | sed 's/}$/, "wait": true}/')"
    submit "$wspec" | jq -c . >"$WORK/cold.$id"
    cmp -s "$WORK/recovered.$id" "$WORK/cold.$id" ||
        fail "job $id recovered bytes differ from a cold run"
done <"$WORK/acked"
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""

say "PASS: seed $SEED — no acked job lost, no divergent bytes, journal compacted"
