#!/bin/sh
# Differential fuzzing smoke (DESIGN.md §14): holds the adversarial
# oracle itself to account before trusting what it reports.
#
#   1. soundness sweep — 500 generated scenarios (5 classes × 100
#      seeds) through both the analytic bounds and the DES: zero
#      violations, and a nonzero bound-tightness gap so the latency
#      comparison demonstrably engaged rather than vacuously passing;
#   2. planted-bug self-test — with the eq. (14) blocking term dropped
#      from the checker (-plant drop-blocking) the same sweep MUST find
#      violations, and every reproducer must delta-debug down to a
#      minimal counterexample of ≤ 2 interrupt sources and ≤ 3 guest
#      tasks. A fuzzer that cannot catch a known bound-tightening bug
#      is not a soundness gate;
#   3. served byte-identity — the same diffuzz campaign submitted to a
#      real daemon over HTTP must stream to an aggregate byte-identical
#      to the local in-process fold.
#
# Usage: scripts/diffuzzsmoke.sh [seed-base]   (default 1)
# DIFFUZZSMOKE_LOGDIR, when set, receives the daemon log for CI upload.
set -eu

cd "$(dirname "$0")/.."

BASE_SEED="${1:-1}"
SEEDS=100
PORT=$((19000 + BASE_SEED % 1000))
URL="http://127.0.0.1:$PORT"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/diffuzzsmoke.XXXXXX")"
LOG="$WORK/served.log"
PID=""

say()  { echo "diffuzzsmoke: $*"; }
fail() {
    say "FAIL: $*"
    if [ -n "${DIFFUZZSMOKE_LOGDIR:-}" ]; then
        mkdir -p "$DIFFUZZSMOKE_LOGDIR"
        cp "$LOG" "$DIFFUZZSMOKE_LOGDIR/served.log" 2>/dev/null || true
    else
        say "workdir kept for post-mortem: $WORK"
        trap - EXIT
    fi
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    exit 1
}
cleanup() {
    [ -n "$PID" ] && kill -9 "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

say "seed base $BASE_SEED, $SEEDS seeds/class, workdir $WORK"
go build -o "$WORK/diffuzz" ./cmd/diffuzz
go build -o "$WORK/served" ./cmd/served
go build -o "$WORK/campaign" ./cmd/campaign

say "phase 1: 500-scenario soundness sweep"
"$WORK/diffuzz" -seeds "$SEEDS" -seed-base "$BASE_SEED" -json \
    -o "$WORK/clean.json" 2>"$WORK/clean.log" ||
    fail "clean sweep found violations or errors: $(cat "$WORK/clean.log")"
grep -q '"total_cells": 500' "$WORK/clean.json" ||
    fail "clean sweep is not a 500-scenario campaign"
grep -q '"violations": 0' "$WORK/clean.json" ||
    fail "clean sweep reports violations"
# Tightness must be measured and positive: the sweep checked real
# victim latencies against real bounds.
awk 'BEGIN { gap = -1; min = -1 }
    /"gap_count":/  { gsub(/[^0-9]/, ""); if (gap < 0) gap = $0 + 0 }
    /"min_gap_us":/ { gsub(/[^0-9.]/, ""); if (min < 0) min = $0 + 0 }
    END { exit (gap > 0 && min > 0) ? 0 : 1 }' "$WORK/clean.json" ||
    fail "clean sweep folded no positive tightness gap"

say "phase 2: planted bound bug must be caught and minimized"
if "$WORK/diffuzz" -seeds "$SEEDS" -seed-base "$BASE_SEED" \
    -plant drop-blocking -o "$WORK/plant.txt" 2>"$WORK/plant.log"; then
    fail "planted eq. (14) bug escaped the sweep"
fi
grep -q 'reproducer:' "$WORK/plant.txt" ||
    fail "planted violations retained no reproducer"
grep -q '^minimized ' "$WORK/plant.log" ||
    fail "no reproducer was minimized: $(cat "$WORK/plant.log")"
# Every minimized counterexample: ≤ 2 sources, ≤ 3 tasks.
awk '/^minimized / {
        n++
        for (i = 1; i < NF; i++) {
            if ($(i + 1) ~ /^sources,/ && $i + 0 > 2) bad = 1
            if ($(i + 1) ~ /^tasks,/ && $i + 0 > 3) bad = 1
        }
    }
    END { exit (n > 0 && !bad) ? 0 : 1 }' "$WORK/plant.log" ||
    fail "a minimized counterexample exceeds 2 sources / 3 tasks: $(cat "$WORK/plant.log")"

say "phase 3: served diffuzz campaign is byte-identical to the local fold"
cat >"$WORK/spec.json" <<EOF
{"kind": "diffuzz", "seeds": {"base": $BASE_SEED, "count": $SEEDS}}
EOF
"$WORK/served" -addr "127.0.0.1:$PORT" -queue 256 -workers 4 >"$LOG" 2>&1 &
PID=$!
i=0
until [ "$(curl -s -o /dev/null -w '%{http_code}' "$URL/readyz")" = 200 ]; do
    i=$((i + 1))
    [ "$i" -gt 600 ] && fail "daemon (pid $PID) never became ready"
    kill -0 "$PID" 2>/dev/null || fail "daemon (pid $PID) died; see log"
    sleep 0.05
done
"$WORK/campaign" -spec "$WORK/spec.json" -addr "$URL" \
    -o "$WORK/served.json" 2>>"$LOG" ||
    fail "served diffuzz campaign failed"
cmp -s "$WORK/clean.json" "$WORK/served.json" ||
    fail "served diffuzz aggregate differs from the local fold"
curl -s "$URL/metrics" |
    awk '$1 == "repro_diffuzz_cells_merged_total" && $2 == 500 { found = 1 }
        END { exit found ? 0 : 1 }' ||
    fail "daemon did not count 500 merged diffuzz cells"
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""

say "PASS: 500 scenarios sound with positive tightness, planted bug caught and minimized, served aggregate byte-identical"
